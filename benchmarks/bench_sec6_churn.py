"""E7 — Paper §VI: churn prediction from emails and SMS.

Paper corpus characteristics and result:

* 47,460 emails analysed, 3% from churners,
* 289,314 SMS analysed, 7.6% from churners,
* ~18% of emails could not be linked (mostly non-customers),
* 53.6% of churners detected correctly using emails.

The bench runs the full study (clean -> link -> features -> NB ->
customer-level detection) on a corpus at 8% of the paper's volume and
prints measured vs paper for every number.
"""

import pytest

from repro.core.usecases.churn import run_churn_study
from repro.util.tabletext import format_table


def test_sec6_churn_email_study(benchmark, telecom_corpus, smoke):
    from benchjson import emit

    result = benchmark.pedantic(
        lambda: run_churn_study(telecom_corpus, channel="email"),
        rounds=1,
        iterations=1,
    )

    rows = [
        [
            "emails analysed",
            "47,460",
            f"{result.total_messages:,} (8% scale)",
        ],
        [
            "churner share of linked emails",
            "3%",
            f"{result.train_churner_fraction:.1%}",
        ],
        [
            "emails unlinkable",
            "18%",
            f"{result.unlinked_fraction:.1%}",
        ],
        [
            "churner detection rate",
            "53.6%",
            f"{result.detection_rate:.1%}",
        ],
    ]
    print()
    print(
        format_table(
            ["metric", "paper", "measured"],
            rows,
            title="SecVI — churn prediction from emails",
        )
    )
    print(
        f"message-level: precision {result.message_report.precision:.2f}, "
        f"fpr {result.message_report.false_positive_rate:.2f}, "
        f"test churners {len(result.test_churners)}"
    )

    emit(
        "churn",
        {
            "bench": "churn",
            "smoke": smoke,
            "emails": result.total_messages,
            "unlinked_fraction": result.unlinked_fraction,
            "train_churner_fraction": result.train_churner_fraction,
            "detection_rate": result.detection_rate,
            "message_precision": result.message_report.precision,
        },
    )

    abs_unlinked = 0.08 if smoke else 0.06
    assert result.unlinked_fraction == pytest.approx(
        0.18, abs=abs_unlinked
    )
    assert result.train_churner_fraction == pytest.approx(
        0.03, abs=0.03 if smoke else 0.02
    )
    # Detection in the paper's neighbourhood; the headline claim is
    # "about half of churners detectable from email text alone".
    if smoke:
        assert 0.25 <= result.detection_rate <= 0.90
    else:
        assert 0.35 <= result.detection_rate <= 0.80


def test_sec6_churn_driver_prevalence(benchmark, telecom_corpus):
    """SecVI's qualitative driver list, made quantitative: every agreed
    churn driver is over-represented in churner messages."""
    from repro.core.usecases.churn import analyse_churn_drivers

    analysis = benchmark.pedantic(
        lambda: analyse_churn_drivers(telecom_corpus),
        rounds=1,
        iterations=1,
    )
    rows = [
        [driver, f"{churner:.2f}", f"{other:.2f}", f"{lift:.2f}"]
        for driver, (churner, other, lift) in analysis.items()
    ]
    print()
    print(
        format_table(
            ["churn driver", "churner rate", "other rate", "lift"],
            rows,
            title="SecVI — churn-driver prevalence in VoC",
        )
    )
    for driver, (_, _, lift) in analysis.items():
        assert lift > 1.2, driver


def test_sec6_churn_sms_study(benchmark, telecom_corpus, smoke):
    result = benchmark.pedantic(
        lambda: run_churn_study(telecom_corpus, channel="sms"),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        format_table(
            ["metric", "paper", "measured"],
            [
                [
                    "sms analysed",
                    "289,314",
                    f"{result.total_messages:,} (8% scale)",
                ],
                [
                    "churner share of linked sms",
                    "7.6%",
                    f"{result.train_churner_fraction:.1%}",
                ],
                [
                    "churner detection rate",
                    "(not reported)",
                    f"{result.detection_rate:.1%}",
                ],
            ],
            title="SecVI — churn signals from SMS",
        )
    )
    assert result.train_churner_fraction == pytest.approx(
        0.076, abs=0.05 if smoke else 0.03
    )
    assert result.detection_rate > (0.1 if smoke else 0.2)
