"""Baseline — word spotting (NICE/VERINT-style) vs the BIVoC pipeline.

Paper §II: commercial tools "use word spotting [23][22] technologies to
index audio conversations ... However, these tools are not geared
towards discovering patterns in the larger business interest."

The bench compares discount-utterance detection on the same acoustic
evidence: (a) LLR keyword spotting directly on the confusion networks,
(b) full Viterbi decoding followed by dictionary/pattern annotation —
the BIVoC way.  Both see identical channel noise.
"""

import pytest

from repro.annotation.domains import DISCOUNT_CATEGORY, build_car_rental_engine
from repro.asr.system import ASRSystem
from repro.asr.wordspot import KeywordSpotter
from repro.synth.carrental import CarRentalConfig, generate_car_rental
from repro.util.tabletext import format_table

DISCOUNT_KEYWORDS = {"discount", "discounts", "corporate", "club",
                     "promotional"}


@pytest.fixture(scope="module")
def setup(smoke):
    """Corpus + calibrated system (smaller corpus at smoke scale)."""
    corpus = generate_car_rental(
        CarRentalConfig(
            n_agents=10 if smoke else 20,
            n_days=3,
            calls_per_agent_per_day=5,
            n_customers=120 if smoke else 200,
            seed=19,
        )
    )
    system = ASRSystem.build_default(
        extra_sentences=[t.text for t in corpus.transcripts[:25]]
    )
    return corpus, system


def _confusion_networks(corpus, system):
    system.channel.reset(808)
    networks = []
    for transcript in corpus.transcripts:
        truth = corpus.truths[transcript.call_id]
        transcription = system.transcribe(transcript.agent_text)
        networks.append(
            (transcription, truth.used_discount)
        )
    return networks


def _prf(predictions_truths):
    tp = sum(1 for p, t in predictions_truths if p and t)
    fp = sum(1 for p, t in predictions_truths if p and not t)
    fn = sum(1 for p, t in predictions_truths if not p and t)
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall
        else 0.0
    )
    return precision, recall, f1


def test_wordspot_vs_pipeline_discount_detection(benchmark, setup):
    corpus, system = setup
    engine = build_car_rental_engine()

    networks = benchmark.pedantic(
        lambda: _confusion_networks(corpus, system),
        rounds=1,
        iterations=1,
    )

    rows = []
    results = {}
    for threshold in (-1.0, 0.0, 1.0):
        spotter = KeywordSpotter(DISCOUNT_KEYWORDS, threshold=threshold)
        outcome = [
            (spotter.contains_any(transcription.network), truth)
            for transcription, truth in networks
        ]
        precision, recall, f1 = _prf(outcome)
        results[f"wordspot@{threshold}"] = f1
        rows.append(
            [
                f"word spotting (LLR >= {threshold})",
                f"{precision:.2f}",
                f"{recall:.2f}",
                f"{f1:.2f}",
            ]
        )

    pipeline_outcome = []
    for transcription, truth in networks:
        document = engine.annotate(transcription.lower_text)
        pipeline_outcome.append(
            (document.has_category(DISCOUNT_CATEGORY), truth)
        )
    precision, recall, f1 = _prf(pipeline_outcome)
    results["pipeline"] = f1
    rows.append(
        ["full decode + annotation (BIVoC)", f"{precision:.2f}",
         f"{recall:.2f}", f"{f1:.2f}"]
    )

    print()
    print(
        format_table(
            ["method", "precision", "recall", "F1"],
            rows,
            title="Baseline — discount-utterance detection at ~45% WER",
        )
    )

    # The full pipeline must beat every word-spotting operating point
    # on F1 (the paper's qualitative claim, made quantitative).
    best_wordspot = max(
        value for name, value in results.items() if name != "pipeline"
    )
    assert results["pipeline"] >= best_wordspot
    assert results["pipeline"] > 0.5
