"""Fig 1 — sanitized VoC examples, regenerated.

The paper's Fig 1 shows one raw example per VoC channel with its
characteristic noise.  The bench renders the reproduction's equivalent
(drawn from the same generators the experiments use) and sanity-checks
each channel's noise signature.
"""

import pytest

from repro.core.fig1 import fig1_examples


def test_fig1_channel_examples(benchmark):
    examples = benchmark.pedantic(
        lambda: fig1_examples(seed=61), rounds=1, iterations=1
    )
    print()
    for channel, text in examples.items():
        print(f"--- {channel} ---")
        print(text)
        print()

    # Channel signatures, as in the paper's figure:
    notes = examples["contact center notes"]
    assert any(
        shorthand in notes.split()
        for shorthand in ("cust", "tht", "teh", "inf", "resv", "bkg")
    )
    assert examples["email"].startswith("from:")
    transcript = examples["call transcript"]
    assert transcript == transcript.upper()
    assert len(transcript.split()) > 30
