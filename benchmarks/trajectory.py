"""Bench trajectory: merge BENCH_*.json and gate against baselines.

The bench suite (``pytest benchmarks/ --smoke``) leaves a set of
``BENCH_<name>.json`` artifacts in the working directory.  This script
merges them into one ``BENCH_trajectory.json`` and compares selected
metrics against the committed ``benchmarks/baselines.json``:

    python benchmarks/trajectory.py merge
    python benchmarks/trajectory.py compare
    python benchmarks/trajectory.py gate      # merge + compare

Baseline entries are keyed by a dotted path into the merged document
(first segment = the bench name, the rest walks its payload)::

    {
      "metrics": {
        "linking.precision": {
          "value": 0.975,            # recorded baseline
          "tol_rel": 0.02,           # allowed relative drift
          "higher_is_better": true,  # or false, or omit for neutral
          "gate": true               # false = report-only (timings)
        }
      }
    }

A gated metric that drifts beyond ``tol_rel`` in the bad direction
(either direction when neutral) fails the run with exit code 1;
drift beyond tolerance in the *good* direction is listed as an
improvement in the summary.  The markdown summary is appended to
``$GITHUB_STEP_SUMMARY`` when that variable is set (the CI job
summary) and always printed to stdout.
"""

import argparse
import glob
import json
import os
import pathlib
import sys

TRAJECTORY_PATH = "BENCH_trajectory.json"
BASELINES_PATH = pathlib.Path(__file__).parent / "baselines.json"


def merge_artifacts(directory=".", out=TRAJECTORY_PATH):
    """Merge every ``BENCH_*.json`` in ``directory`` (except the
    trajectory itself) into one document keyed by bench name."""
    benches = {}
    pattern = os.path.join(directory, "BENCH_*.json")
    for path in sorted(glob.glob(pattern)):
        name = pathlib.Path(path).stem[len("BENCH_"):]
        if name == "trajectory":
            continue
        with open(path, encoding="utf-8") as handle:
            benches[name] = json.load(handle)
    document = {"benches": benches}
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document


def lookup(document, dotted):
    """Resolve ``a.b.c`` inside the merged document's benches.

    Returns ``None`` when any segment is missing (a missing gated
    metric is itself a regression — a bench silently stopped emitting).
    """
    node = document.get("benches", {})
    for segment in dotted.split("."):
        if not isinstance(node, dict) or segment not in node:
            return None
        node = node[segment]
    return node


def compare_metric(name, spec, actual):
    """Classify one metric: returns ``(status, detail)``.

    ``status`` is one of ``ok``, ``regression``, ``improvement``,
    ``missing``; ``detail`` is the human-readable delta line.
    """
    base = spec["value"]
    if actual is None or not isinstance(actual, (int, float)):
        return "missing", f"`{name}` missing from trajectory"
    tol = spec.get("tol_rel", 0.0)
    denominator = abs(base) if base else 1.0
    rel = (actual - base) / denominator
    direction = spec.get("higher_is_better")
    detail = (
        f"`{name}`: baseline {base:g}, now {actual:g} "
        f"({rel:+.1%}, tol ±{tol:.0%})"
    )
    if direction is None:
        status = "regression" if abs(rel) > tol else "ok"
    elif direction:
        status = (
            "regression" if rel < -tol
            else "improvement" if rel > tol
            else "ok"
        )
    else:
        status = (
            "regression" if rel > tol
            else "improvement" if rel < -tol
            else "ok"
        )
    return status, detail


def compare(document, baselines):
    """Compare the merged document against the baselines.

    Returns ``(failures, improvements, lines)`` where ``lines`` is the
    full markdown report body.
    """
    failures = []
    improvements = []
    lines = []
    for name in sorted(baselines.get("metrics", {})):
        spec = baselines["metrics"][name]
        gated = spec.get("gate", True)
        status, detail = compare_metric(name, spec, lookup(document, name))
        if status in ("regression", "missing"):
            if gated:
                failures.append(detail)
                lines.append(f"- ❌ REGRESSION {detail}")
            else:
                lines.append(f"- ⚠️ drift (non-gating) {detail}")
        elif status == "improvement":
            improvements.append(detail)
            lines.append(f"- ✅ improvement {detail}")
        else:
            lines.append(f"- ok {detail}")
    return failures, improvements, lines


def write_summary(lines, failures, improvements):
    """Print the markdown summary; mirror it to the CI job summary."""
    header = ["## Bench trajectory vs baselines", ""]
    if failures:
        header.append(
            f"**{len(failures)} gated regression(s) — failing the job.**"
        )
    elif improvements:
        header.append(
            f"All gates green; {len(improvements)} improvement(s) noted "
            f"— consider refreshing benchmarks/baselines.json."
        )
    else:
        header.append("All gates green.")
    header.append("")
    body = "\n".join(header + lines) + "\n"
    print(body)
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a", encoding="utf-8") as handle:
            handle.write(body)


def main(argv=None):
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="trajectory",
        description="merge BENCH_*.json and gate against baselines",
    )
    parser.add_argument(
        "command", choices=("merge", "compare", "gate"),
        help="merge artifacts, compare an existing trajectory, or both",
    )
    parser.add_argument(
        "--dir", default=".",
        help="directory holding the BENCH_*.json artifacts",
    )
    parser.add_argument(
        "--trajectory", default=TRAJECTORY_PATH,
        help="merged trajectory path (merge output / compare input)",
    )
    parser.add_argument(
        "--baselines", default=str(BASELINES_PATH),
        help="committed baselines file",
    )
    args = parser.parse_args(argv)

    if args.command in ("merge", "gate"):
        document = merge_artifacts(args.dir, args.trajectory)
        print(
            f"merged {len(document['benches'])} bench artifact(s) "
            f"-> {args.trajectory}"
        )
        if args.command == "merge":
            return 0
    else:
        with open(args.trajectory, encoding="utf-8") as handle:
            document = json.load(handle)

    with open(args.baselines, encoding="utf-8") as handle:
        baselines = json.load(handle)
    failures, improvements, lines = compare(document, baselines)
    write_summary(lines, failures, improvements)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
