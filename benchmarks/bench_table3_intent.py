"""E4 — Paper Table III: customer intention vs pick-up result.

    Strong start:  63% reservation / 37% unbooked
    Weak start:    32% reservation / 68% unbooked

The bench runs the BIVoC pipeline on the shared corpus (reference
transcripts — the calibrated headline path) and prints the measured
shares; the ASR-noise sensitivity lives in bench_ablation_asr_noise.
"""

import pytest

from repro.mining.reports import outcome_percentage_table

PAPER = {"strong": 0.63, "weak": 0.32}


def test_table3_intent_vs_outcome(benchmark, car_corpus, smoke):
    from benchjson import emit

    from repro.core import BIVoCConfig, run_insight_analysis

    study = benchmark.pedantic(
        lambda: run_insight_analysis(
            car_corpus, BIVoCConfig(use_asr=False, link_mode="content")
        ),
        rounds=1,
        iterations=1,
    )

    print()
    print(
        outcome_percentage_table(
            study.intent_table,
            title="Table III — customer intentions vs pick-up results",
            col_order=["reservation", "unbooked"],
        )
    )
    shares = study.intent_shares()
    strong = shares["strong"]["reservation"]
    weak = shares["weak"]["reservation"]
    print(
        f"\npaper: strong 63%/37%, weak 32%/68%; "
        f"measured: strong {strong:.1%}, weak {weak:.1%}"
    )

    emit(
        "intent",
        {
            "bench": "intent",
            "smoke": smoke,
            "strong_reservation": strong,
            "weak_reservation": weak,
            "gap": strong - weak,
            "intent_detected": study.analysis.stats["intent_detected"],
            "total": study.analysis.stats["total"],
        },
    )

    tolerance = 0.12 if smoke else 0.06  # smaller corpus, wider draw
    assert strong == pytest.approx(PAPER["strong"], abs=tolerance)
    assert weak == pytest.approx(PAPER["weak"], abs=tolerance)
    assert strong > weak + (0.12 if smoke else 0.2)  # the headline gap
