"""Ablation — interval lower bound vs point estimate in Eqn 4.

The paper replaces the point-estimated lift with "the left terminal
value (smallest value) of the interval estimation" because the point
estimate "can be inaccurate when the value of N_cell, N_ver, or N is
not sufficiently large".  The ablation plants one genuine association
in a sea of noise concepts and measures how each scoring ranks the
planted cell against spurious sparse co-occurrences.
"""

import pytest

from repro.mining.assoc2d import associate
from repro.mining.index import ConceptIndex
from repro.util.rng import derive_rng
from repro.util.tabletext import format_table


def _noisy_index(n_docs=3000, n_coincidences=6, seed=3):
    """One planted association + noise + rare-concept coincidences.

    The coincidences are the paper's failure mode: two concepts that
    each occur twice in the whole corpus and co-occur once.  Their
    point lift is enormous (~N/4) on no evidence at all.
    """
    rng = derive_rng(seed, "ablation-interval")
    index = ConceptIndex()
    # Noise never uses r0/c0, so the planted pair is a clean, dense,
    # genuinely strong association.
    row_values = [f"r{i}" for i in range(1, 12)]
    col_values = [f"c{i}" for i in range(1, 12)]
    doc_id = 0
    for _ in range(n_docs):
        if rng.random() < 0.04:
            row, col = "r0", "c0"  # the planted association
        else:
            row = row_values[int(rng.integers(0, len(row_values)))]
            col = col_values[int(rng.integers(0, len(col_values)))]
        index.add(doc_id, fields={"row": row, "col": col})
        doc_id += 1
    for k in range(n_coincidences):
        # rare pair co-occurs once ...
        index.add(doc_id, fields={"row": f"rare_r{k}", "col": f"rare_c{k}"})
        doc_id += 1
        # ... and each rare concept occurs once more, elsewhere.
        index.add(doc_id, fields={"row": f"rare_r{k}", "col": "c1"})
        doc_id += 1
        index.add(doc_id, fields={"row": "r1", "col": f"rare_c{k}"})
        doc_id += 1
    return index


def _rank_of_planted(table, score):
    cells = [cell for cell in table.cells() if cell.count > 0]
    cells.sort(key=score, reverse=True)
    for rank, cell in enumerate(cells, start=1):
        if cell.row_value == "r0" and cell.col_value == "c0":
            return rank
    raise AssertionError("planted cell vanished")


def test_interval_bound_vs_point_estimate(benchmark):
    index = _noisy_index()

    table = benchmark.pedantic(
        lambda: associate(
            index, ("field", "row"), ("field", "col"), confidence=0.99
        ),
        rounds=1,
        iterations=1,
    )

    point_rank = _rank_of_planted(table, lambda c: c.point_lift)
    bound_rank = _rank_of_planted(table, lambda c: c.strength)
    planted = table.cell("r0", "c0")
    coincidence = table.cell("rare_r0", "rare_c0")

    print()
    print(
        format_table(
            ["cell", "count", "point lift", "bound (99%)"],
            [
                [
                    "planted association",
                    planted.count,
                    f"{planted.point_lift:.1f}",
                    f"{planted.strength:.2f}",
                ],
                [
                    "rare coincidence",
                    coincidence.count,
                    f"{coincidence.point_lift:.1f}",
                    f"{coincidence.strength:.2f}",
                ],
            ],
            title="Ablation — Eqn 4 point estimate vs interval bound",
        )
    )
    print(
        f"rank of planted cell: point estimate {point_rank}, "
        f"interval bound {bound_rank}"
    )
    planted_keep = planted.strength / planted.point_lift
    coincidence_keep = coincidence.strength / coincidence.point_lift
    print(
        f"score retained by the bound: planted {planted_keep:.0%}, "
        f"coincidence {coincidence_keep:.2%}"
    )

    # The point estimate inflates the 1-count coincidences above the
    # planted dense association ...
    assert point_rank > 1
    assert coincidence.point_lift > planted.point_lift * 10
    # ... while the interval bound shrinks them by orders of magnitude
    # and restores the planted cell to rank 1.
    assert bound_rank == 1
    assert coincidence_keep < 0.05
    assert planted_keep > 0.5
