"""E3 — Paper Table II / Fig 4: two-dimensional association analysis.

Table II's frame is location categories x vehicle-type categories,
filled "by counting the number of texts that contain both the column
and row labels" and scored with the interval-estimated lift (Eqn 4).
Fig 4 is the drill-down from a cell to its documents.

The generator plants city->vehicle preferences (weight 6 vs 1); the
bench checks the analysis recovers the planted heavy cells and prints
the full table plus a drill-down.
"""

import pytest

from repro.mining.reports import render_association
from repro.synth.lexicon import CITY_VEHICLE_WEIGHTS

# Planted heavy cells (weight 5-6 in CITY_VEHICLE_WEIGHTS).
PLANTED = {
    (city, max(weights, key=weights.get))
    for city, weights in CITY_VEHICLE_WEIGHTS.items()
    if max(weights.values()) >= 5
}


def test_table2_location_vehicle_association(benchmark, clean_study):
    from repro.mining.assoc2d import associate

    index = clean_study.analysis.index

    table = benchmark.pedantic(
        lambda: associate(
            index, ("concept", "place"), ("concept", "vehicle type")
        ),
        rounds=1,
        iterations=1,
    )

    print()
    print(
        render_association(
            table,
            value="count",
            title="Table II — location x vehicle type (counts)",
        )
    )
    print()
    print(
        render_association(
            table,
            value="strength",
            title="Table II — interval-bounded lift (Eqn 4)",
        )
    )

    strongest = table.strongest(10, min_count=5)
    found = {(c.row_value, c.col_value) for c in strongest}
    overlap = found & PLANTED
    print(f"\nplanted heavy cells recovered in top-10: {sorted(overlap)}")

    # Most of the planted city-vehicle preferences must surface.
    assert len(overlap) >= 3

    # Fig 4 drill-down: cells resolve to their documents.
    top = strongest[0]
    documents = table.documents(top.row_value, top.col_value)
    assert len(documents) == top.count
    print(
        f"drill-down (Fig 4): ({top.row_value}, {top.col_value}) -> "
        f"{len(documents)} calls, e.g. {documents[:6]}"
    )


def test_table2_strength_consistent_with_counts(benchmark, clean_study):
    """Sanity of Eqn-4 scoring on the real corpus: within each city
    row, the planted dominant vehicle's cell carries a higher bound
    than the city's rarest vehicle.  (The dedicated sparse-cell study
    is bench_ablation_interval.)"""
    from repro.mining.assoc2d import associate

    table = benchmark.pedantic(
        lambda: associate(
            clean_study.analysis.index,
            ("concept", "place"),
            ("concept", "vehicle type"),
        ),
        rounds=1,
        iterations=1,
    )
    checked = 0
    for city, dominant in PLANTED:
        if city not in table.row_values:
            continue
        row_cells = [
            table.cell(city, vehicle)
            for vehicle in table.col_values
        ]
        rarest = min(row_cells, key=lambda c: c.count)
        dominant_cell = table.cell(city, dominant)
        if dominant_cell.count > 3 * max(rarest.count, 1):
            assert dominant_cell.strength > rarest.strength
            checked += 1
    assert checked >= 3
