"""Sharded analytics: indexing throughput and per-analytic latency.

The partial/merge/finalize algebra (``repro.mining.algebra``) promises
two things: sharded execution is *bit-identical* to the single-index
analytics, and the per-shard partials give the runtime something to
fan out.  This bench measures both over the pipeline-built car-rental
index: for 1, 2, 4 and 8 shards it times index construction
(docs/sec) and each analytic (relative frequency, association, trends,
emerging concepts, OLAP cube), verifies every result ``==`` the
unsharded reference, and emits the trajectory artifact — with
``merge_identical`` as a gated correctness metric (1 = every layout
matched exactly).

The same sweep is then repeated per execution backend (serial,
thread, process) so the trajectory records where per-shard fan-out
pays off.  ``process_speedup`` (best multi-shard throughput under the
process backend over its single-shard run) is tracked as a
*non-gating* baseline: single-core CI runners cannot show a real
speedup, only that the process path stays correct.
"""

import time

from repro.exec import BACKEND_KINDS, make_backend
from repro.mining.assoc2d import associate
from repro.mining.olap import concept_cube
from repro.mining.relfreq import relative_frequency
from repro.mining.sharded import ShardedConceptIndex
from repro.mining.trends import emerging_concepts, trend_series
from repro.util.tabletext import format_table

from benchjson import emit

SHARD_COUNTS = [1, 2, 4, 8]

FOCUS = [("field", "call_type", "unbooked")]
CANDIDATES = ("concept", "place")
ROWS = ("concept", "place")
COLS = ("concept", "vehicle type")
TREND_DIM = ("concept", "vehicle type")
CUBE_DIMS = [("concept", "place"), ("field", "call_type")]


def _reshard(single, n_shards):
    """Copy a single index's contents into an N-shard layout, timed."""
    sharded = ShardedConceptIndex(n_shards)
    start = time.perf_counter()
    for doc_id in single.document_ids:
        sharded.add_keys(
            doc_id,
            single.keys_of(doc_id),
            timestamp=single.timestamp_of(doc_id),
        )
    return sharded, time.perf_counter() - start


def _run_analytics(index, backend=None):
    """Run every mining analytic; returns (results, latencies_ms)."""
    results = {}
    timings = {}

    def timed(name, thunk):
        start = time.perf_counter()
        results[name] = thunk()
        timings[name] = (time.perf_counter() - start) * 1000.0

    timed(
        "relative_frequency",
        lambda: relative_frequency(
            index, FOCUS, CANDIDATES, backend=backend
        ),
    )
    timed(
        "associate",
        lambda: associate(index, ROWS, COLS, backend=backend),
    )
    timed(
        "trend_series",
        lambda: [
            trend_series(index, key, backend=backend)
            for key in index.keys_of_dimension(TREND_DIM)
        ],
    )
    timed(
        "emerging_concepts",
        lambda: emerging_concepts(
            index, TREND_DIM, min_total=1, backend=backend
        ),
    )
    timed(
        "concept_cube",
        lambda: concept_cube(index, CUBE_DIMS, backend=backend),
    )
    return results, timings


def _identical(reference, candidate):
    """True when every analytic's result matches bit-exactly."""
    if reference["relative_frequency"] != candidate["relative_frequency"]:
        return False
    if reference["trend_series"] != candidate["trend_series"]:
        return False
    if reference["emerging_concepts"] != candidate["emerging_concepts"]:
        return False
    ref_table = reference["associate"]
    cand_table = candidate["associate"]
    if ref_table.cells() != cand_table.cells():
        return False
    if ref_table.row_share_matrix() != cand_table.row_share_matrix():
        return False
    ref_cube = reference["concept_cube"]
    cand_cube = candidate["concept_cube"]
    return ref_cube.cells(include_empty_coordinates=True) == (
        cand_cube.cells(include_empty_coordinates=True)
    )


def test_sharded_analytics(clean_study, smoke):
    """Throughput + latency per shard count, gated on exact merges."""
    single = clean_study.analysis.index
    n_docs = len(single)
    reference, single_timings = _run_analytics(single)

    layouts = {}
    sharded_layouts = {}
    all_identical = True
    for n_shards in SHARD_COUNTS:
        sharded, build_s = _reshard(single, n_shards)
        assert len(sharded) == n_docs
        sharded_layouts[n_shards] = sharded
        results, timings = _run_analytics(sharded)
        identical = _identical(reference, results)
        all_identical = all_identical and identical
        layouts[str(n_shards)] = {
            "index_build_s": build_s,
            "docs_per_sec": n_docs / build_s if build_s else 0.0,
            "analytic_latency_ms": timings,
            "merge_identical": 1 if identical else 0,
            "shard_sizes": sharded.shard_sizes(),
        }

    # The same sweep again under every execution backend.  The
    # interesting number is the process backend: its per-shard
    # partials fan out across worker processes, so multi-shard runs
    # should keep pace with (and on real multi-core hosts beat) its
    # own single-shard run — while staying bit-identical throughout.
    backends = {}
    for kind in BACKEND_KINDS:
        per_layout = {}
        for n_shards in SHARD_COUNTS:
            with make_backend(kind, workers=2) as backend:
                results, timings = _run_analytics(
                    sharded_layouts[n_shards], backend=backend
                )
            identical = _identical(reference, results)
            all_identical = all_identical and identical
            per_layout[str(n_shards)] = {
                "analytic_latency_ms": timings,
                "total_analytic_ms": sum(timings.values()),
                "merge_identical": 1 if identical else 0,
            }
        backends[kind] = per_layout

    process_single_ms = backends["process"]["1"]["total_analytic_ms"]
    process_best_multi_ms = min(
        backends["process"][str(n)]["total_analytic_ms"]
        for n in SHARD_COUNTS
        if n > 1
    )
    process_speedup = (
        process_single_ms / process_best_multi_ms
        if process_best_multi_ms
        else 0.0
    )

    print()
    print(
        format_table(
            ["shards", "docs/sec", "relfreq", "assoc", "cube"],
            [
                [
                    name,
                    f"{layout['docs_per_sec']:,.0f}",
                    f"{layout['analytic_latency_ms']['relative_frequency']:.2f} ms",
                    f"{layout['analytic_latency_ms']['associate']:.2f} ms",
                    f"{layout['analytic_latency_ms']['concept_cube']:.2f} ms",
                ]
                for name, layout in layouts.items()
            ],
            title=(
                f"sharded analytics over {n_docs:,} pipeline documents"
            ),
        )
    )
    print()
    print(
        format_table(
            ["backend"] + [f"{n} shards" for n in SHARD_COUNTS],
            [
                [kind] + [
                    f"{per_layout[str(n)]['total_analytic_ms']:.1f} ms"
                    for n in SHARD_COUNTS
                ]
                for kind, per_layout in backends.items()
            ],
            title=(
                "total analytic latency by backend "
                f"(process speedup {process_speedup:.2f}x)"
            ),
        )
    )
    assert all_identical
    emit(
        "shards",
        {
            "bench": "shards",
            "smoke": smoke,
            "indexed_docs": n_docs,
            "merge_identical": 1 if all_identical else 0,
            "single_analytic_latency_ms": single_timings,
            "layouts": layouts,
            "backends": backends,
            "process_speedup": process_speedup,
        },
    )
