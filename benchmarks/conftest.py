"""Shared fixtures for the benchmark/reproduction harness.

Benches print the regenerated paper tables; run them with

    pytest benchmarks/ --benchmark-only -s

The session-scoped corpus and pipeline results are shared across bench
files so the expensive steps (corpus generation, the clean analysis
pass) run once.
"""

import pytest

from repro.core import BIVoCConfig, run_insight_analysis
from repro.synth.carrental import CarRentalConfig, generate_car_rental
from repro.synth.telecom import TelecomConfig, generate_telecom

BENCH_CAR_CONFIG = CarRentalConfig(
    n_agents=90,
    n_days=8,
    calls_per_agent_per_day=4,
    n_customers=1200,
    seed=29,
)

#: Smoke-scale variant used by CI's bench-trajectory job: same seed and
#: shape, ~1/8 of the calls, so every bench still exercises its full
#: code path and the emitted metrics stay deterministic run-to-run.
BENCH_CAR_SMOKE_CONFIG = CarRentalConfig(
    n_agents=24,
    n_days=4,
    calls_per_agent_per_day=4,
    n_customers=320,
    seed=29,
)

BENCH_TELECOM_CONFIG = TelecomConfig(scale=0.08, n_customers=3000, seed=11)

#: Smoke-scale telecom corpus (~1/4 volume), same seed.
BENCH_TELECOM_SMOKE_CONFIG = TelecomConfig(
    scale=0.02, n_customers=900, seed=11
)


@pytest.fixture(scope="session")
def car_corpus(smoke):
    """Car-rental corpus for the Tables II-IV benches.

    ~2900 calls at full scale, ~380 at ``--smoke`` scale.
    """
    return generate_car_rental(
        BENCH_CAR_SMOKE_CONFIG if smoke else BENCH_CAR_CONFIG
    )


@pytest.fixture(scope="session")
def clean_study(car_corpus):
    """Pipeline output on reference transcripts (headline tables)."""
    return run_insight_analysis(
        car_corpus, BIVoCConfig(use_asr=False, link_mode="content")
    )


@pytest.fixture(scope="session")
def telecom_corpus(smoke):
    """Telecom corpus: 8% of the paper's volume, 2% at smoke scale."""
    return generate_telecom(
        BENCH_TELECOM_SMOKE_CONFIG if smoke else BENCH_TELECOM_CONFIG
    )


def pytest_addoption(parser):
    """Bench-suite flags: ``--smoke`` shrinks benches for CI."""
    parser.addoption(
        "--smoke",
        action="store_true",
        default=False,
        help="run benches at smoke scale (small corpora, fast; "
             "used by the non-gating CI step)",
    )


@pytest.fixture(scope="session")
def smoke(request):
    """True when the bench run should stay at smoke scale."""
    return request.config.getoption("--smoke")
