"""E14 — §III challenge 3 / §IV-D: volume and reporting latency.

"The third challenge in using VoC for BI is in storing and processing
large volumes of data" and "[indexing] allows quick reporting to be
done on datasets containing even millions of documents."

The bench builds a concept index over 200k synthetic documents and
measures (a) indexing throughput and (b) the latency of the reporting
primitives (marginal counts, pair counts, a full association table) —
the operations behind the paper's interactive drill-down view.
"""

import time

import pytest

from repro.mining.assoc2d import associate
from repro.mining.index import ConceptIndex, field_key
from repro.util.rng import derive_rng
from repro.util.tabletext import format_table

N_DOCS = 200_000
SMOKE_N_DOCS = 40_000


def _bulk_documents(n_docs, seed=5):
    rng = derive_rng(seed, "scalability")
    places = [f"city{i}" for i in range(40)]
    vehicles = [f"vehicle{i}" for i in range(12)]
    outcomes = ["reservation", "unbooked", "service"]
    place_idx = rng.integers(0, len(places), size=n_docs)
    vehicle_idx = rng.integers(0, len(vehicles), size=n_docs)
    outcome_idx = rng.integers(0, len(outcomes), size=n_docs)
    day = rng.integers(0, 60, size=n_docs)
    return [
        {
            "place": places[place_idx[i]],
            "vehicle": vehicles[vehicle_idx[i]],
            "outcome": outcomes[outcome_idx[i]],
            "day": int(day[i]),
        }
        for i in range(n_docs)
    ]


@pytest.fixture(scope="module")
def bulk_docs(smoke):
    """How many documents the bulk index holds at this scale."""
    return SMOKE_N_DOCS if smoke else N_DOCS


@pytest.fixture(scope="module")
def bulk_index(bulk_docs):
    """Concept index over the bulk synthetic document set."""
    index = ConceptIndex()
    for doc_id, fields in enumerate(_bulk_documents(bulk_docs)):
        day = fields.pop("day")
        index.add(doc_id, fields=fields, timestamp=day)
    return index


def test_indexing_throughput(benchmark, smoke):
    n_docs = 10_000 if smoke else 50_000
    documents = _bulk_documents(n_docs=n_docs)
    timing = {}

    def build():
        start = time.perf_counter()
        index = ConceptIndex()
        for doc_id, fields in enumerate(documents):
            index.add(doc_id, fields=dict(fields))
        timing["build_s"] = time.perf_counter() - start
        return index

    index = benchmark.pedantic(build, rounds=1, iterations=1)
    assert len(index) == n_docs

    from benchjson import emit

    build_s = timing["build_s"]
    emit(
        "scalability",
        {
            "bench": "scalability",
            "smoke": smoke,
            "indexed_docs": n_docs,
            "index_build_s": build_s,
            "docs_per_sec": n_docs / build_s if build_s else 0.0,
        },
    )


def test_reporting_latency_at_bulk_scale(benchmark, bulk_index,
                                         bulk_docs):
    """Latency of the reporting primitives over the bulk index."""
    index = bulk_index
    assert len(index) == bulk_docs

    timings = {}

    start = time.perf_counter()
    count = index.count(field_key("place", "city3"))
    timings["marginal count"] = time.perf_counter() - start
    assert count > 0

    start = time.perf_counter()
    pair = index.count_pair(
        field_key("place", "city3"), field_key("outcome", "reservation")
    )
    timings["pair count"] = time.perf_counter() - start
    assert pair > 0

    table = benchmark.pedantic(
        lambda: associate(
            index, ("field", "place"), ("field", "vehicle")
        ),
        rounds=1,
        iterations=1,
    )
    assert len(table.cells()) == 40 * 12

    print()
    print(
        format_table(
            ["operation", "latency"],
            [
                [name, f"{seconds * 1000:.2f} ms"]
                for name, seconds in timings.items()
            ],
            title=(
                f"E14 — reporting primitives over "
                f"{bulk_docs:,} documents"
            ),
        )
    )
    # Interactive-grade latency for the point lookups.
    assert timings["marginal count"] < 0.05
    assert timings["pair count"] < 0.25
