"""E14 — §III challenge 3 / §IV-D: volume and reporting latency.

"The third challenge in using VoC for BI is in storing and processing
large volumes of data" and "[indexing] allows quick reporting to be
done on datasets containing even millions of documents."

The bench builds a concept index over 200k synthetic documents and
measures (a) indexing throughput and (b) the latency of the reporting
primitives (marginal counts, pair counts, a full association table) —
the operations behind the paper's interactive drill-down view.
"""

import time

import pytest

from repro.mining.assoc2d import associate
from repro.mining.index import ConceptIndex, field_key
from repro.util.rng import derive_rng
from repro.util.tabletext import format_table

N_DOCS = 200_000


def _bulk_documents(n_docs=N_DOCS, seed=5):
    rng = derive_rng(seed, "scalability")
    places = [f"city{i}" for i in range(40)]
    vehicles = [f"vehicle{i}" for i in range(12)]
    outcomes = ["reservation", "unbooked", "service"]
    place_idx = rng.integers(0, len(places), size=n_docs)
    vehicle_idx = rng.integers(0, len(vehicles), size=n_docs)
    outcome_idx = rng.integers(0, len(outcomes), size=n_docs)
    day = rng.integers(0, 60, size=n_docs)
    return [
        {
            "place": places[place_idx[i]],
            "vehicle": vehicles[vehicle_idx[i]],
            "outcome": outcomes[outcome_idx[i]],
            "day": int(day[i]),
        }
        for i in range(n_docs)
    ]


@pytest.fixture(scope="module")
def bulk_index():
    index = ConceptIndex()
    for doc_id, fields in enumerate(_bulk_documents()):
        day = fields.pop("day")
        index.add(doc_id, fields=fields, timestamp=day)
    return index


def test_indexing_throughput(benchmark):
    documents = _bulk_documents(n_docs=50_000)

    def build():
        index = ConceptIndex()
        for doc_id, fields in enumerate(documents):
            index.add(doc_id, fields=dict(fields))
        return index

    index = benchmark.pedantic(build, rounds=1, iterations=1)
    assert len(index) == 50_000


def test_reporting_latency_at_200k_documents(benchmark, bulk_index):
    index = bulk_index
    assert len(index) == N_DOCS

    timings = {}

    start = time.perf_counter()
    count = index.count(field_key("place", "city3"))
    timings["marginal count"] = time.perf_counter() - start
    assert count > 0

    start = time.perf_counter()
    pair = index.count_pair(
        field_key("place", "city3"), field_key("outcome", "reservation")
    )
    timings["pair count"] = time.perf_counter() - start
    assert pair > 0

    table = benchmark.pedantic(
        lambda: associate(
            index, ("field", "place"), ("field", "vehicle")
        ),
        rounds=1,
        iterations=1,
    )
    assert len(table.cells()) == 40 * 12

    print()
    print(
        format_table(
            ["operation", "latency"],
            [
                [name, f"{seconds * 1000:.2f} ms"]
                for name, seconds in timings.items()
            ],
            title=f"E14 — reporting primitives over {N_DOCS:,} documents",
        )
    )
    # Interactive-grade latency for the point lookups.
    assert timings["marginal count"] < 0.05
    assert timings["pair count"] < 0.25
