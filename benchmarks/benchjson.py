"""Machine-readable bench artifacts for the trajectory gate.

Benches call :func:`emit` to write ``BENCH_<name>.json`` into the
working directory (the repo root when run as ``pytest benchmarks/``).
``benchmarks/trajectory.py`` merges every ``BENCH_*.json`` into
``BENCH_trajectory.json`` and compares the merged metrics against the
committed ``benchmarks/baselines.json`` — so any payload key a
baseline references becomes a gated metric.  Keep payloads to plain
JSON scalars/dicts and include a ``"smoke"`` flag so baselines
recorded at smoke scale are never compared against full-scale runs.
"""

import json
import pathlib


def emit(name, payload):
    """Write ``BENCH_<name>.json`` (sorted keys) and return its path."""
    path = pathlib.Path(f"BENCH_{name}.json")
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path
