"""Ablation — calibrated outcome model vs hand-set conditionals.

The corpus generator solves its outcome-model parameters from the
paper's target marginals (DESIGN.md §5).  The ablation compares the
implied Table III/IV marginals of the calibrated model against an
uncalibrated guess with the same qualitative structure, showing why
the solver is worth its complexity.
"""

import pytest

from repro.synth.calibration import (
    BehaviourRates,
    CalibratedOutcomeModel,
    OutcomeTargets,
    calibrate_outcome_model,
)
from repro.util.tabletext import format_table

TARGETS = {
    "book_given_strong": 0.63,
    "book_given_weak": 0.32,
    "book_given_value_selling": 0.59,
    "book_given_discount": 0.72,
}


def test_calibration_vs_hand_set(benchmark):
    behaviour = BehaviourRates()

    calibrated = benchmark.pedantic(
        lambda: calibrate_outcome_model(OutcomeTargets(), behaviour),
        rounds=1,
        iterations=1,
    )
    # A reasonable-looking hand guess: strong start helps, both
    # utterances help, discount helps more.
    hand_set = CalibratedOutcomeModel(
        theta_strong=0.5,
        theta_weak=-0.75,
        effect_value_selling=0.4,
        effect_discount=0.8,
        behaviour=behaviour,
    )

    calibrated_marginals = calibrated.implied_marginals()
    hand_marginals = hand_set.implied_marginals()

    rows = []
    worst_calibrated = worst_hand = 0.0
    for name, target in TARGETS.items():
        calibrated_err = abs(calibrated_marginals[name] - target)
        hand_err = abs(hand_marginals[name] - target)
        worst_calibrated = max(worst_calibrated, calibrated_err)
        worst_hand = max(worst_hand, hand_err)
        rows.append(
            [
                name,
                f"{target:.2f}",
                f"{calibrated_marginals[name]:.3f}",
                f"{hand_marginals[name]:.3f}",
            ]
        )
    print()
    print(
        format_table(
            ["marginal", "paper", "calibrated", "hand-set"],
            rows,
            title="Ablation — generator calibration quality",
        )
    )
    print(
        f"worst absolute error: calibrated {worst_calibrated:.4f}, "
        f"hand-set {worst_hand:.4f}"
    )

    assert worst_calibrated < 0.005
    assert worst_hand > 0.03  # the guess misses by whole points
