"""E9 — Paper §III / §IV-A.2: VoC noise profile and the cleaning funnel.

Fig 1 illustrates the channel noise (lingo, multilingual fragments,
truncation); §IV-A.2/§VI describe the two-step cleaning.  The bench
pushes the telecom corpus through the pipeline and reports the funnel:
spam discarded, non-English discarded, furniture stripped, text
repaired — with detection quality against generation ground truth.
"""

import pytest

from repro.cleaning.pipeline import CleaningPipeline
from repro.util.tabletext import format_table


def test_cleaning_funnel(benchmark, telecom_corpus):
    corpus = telecom_corpus

    def run():
        pipeline = CleaningPipeline(spell_correct=False)
        outcomes = {}
        for message in corpus.emails[:1500]:
            outcomes[message.message_id] = pipeline.clean(
                message.raw_text, channel="email"
            )
        for message in corpus.sms[:4000]:
            outcomes[message.message_id] = pipeline.clean(
                message.raw_text, channel="sms"
            )
        return pipeline, outcomes

    pipeline, outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    stats = pipeline.stats

    spam_truth = [
        m for m in corpus.emails[:1500] if m.is_spam
    ]
    spam_caught = sum(
        1
        for m in spam_truth
        if outcomes[m.message_id].reason == "spam"
    )
    foreign_truth = [
        m for m in corpus.sms[:4000] if m.is_non_english
    ]
    foreign_caught = sum(
        1
        for m in foreign_truth
        if outcomes[m.message_id].reason == "non-english"
    )
    customer_msgs = [
        m
        for m in corpus.emails[:1500] + corpus.sms[:4000]
        if m.sender_entity_id is not None
    ]
    false_discards = sum(
        1
        for m in customer_msgs
        if outcomes[m.message_id].discarded
    )

    print()
    print(
        format_table(
            ["stage", "count"],
            [
                ["messages in", stats.total],
                ["discarded: spam", stats.spam],
                ["discarded: non-english", stats.non_english],
                ["discarded: empty", stats.empty],
                ["kept for analysis", stats.kept],
            ],
            title="SecIV-A.2 — cleaning funnel",
        )
    )
    print(
        f"spam recall {spam_caught}/{len(spam_truth)}, "
        f"non-english recall {foreign_caught}/{len(foreign_truth)}, "
        f"customer messages falsely discarded "
        f"{false_discards}/{len(customer_msgs)} "
        f"({false_discards / len(customer_msgs):.1%})"
    )

    assert spam_caught / len(spam_truth) > 0.9
    assert foreign_caught / len(foreign_truth) > 0.9
    assert false_discards / len(customer_msgs) < 0.10


def test_lingo_normalisation_repair_rate(benchmark, telecom_corpus):
    """How much of the SMS-lingo damage does normalisation undo?

    Measured as mean token overlap with the clean reference before and
    after normalisation.
    """
    from repro.cleaning.sms import SmsNormalizer

    corpus = telecom_corpus
    normalizer = SmsNormalizer()
    sms = [
        m
        for m in corpus.sms[:1500]
        if m.sender_entity_id is not None
    ]

    def overlap(text, reference):
        got = set(text.lower().split())
        want = set(reference.lower().split())
        if not want:
            return 1.0
        return len(got & want) / len(want)

    def run():
        before = sum(
            overlap(m.raw_text, m.clean_text) for m in sms
        ) / len(sms)
        after = sum(
            overlap(normalizer.normalize(m.raw_text), m.clean_text)
            for m in sms
        ) / len(sms)
        return before, after

    before, after = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        f"token overlap with clean reference: raw {before:.3f} -> "
        f"normalised {after:.3f}"
    )
    assert after > before + 0.04
