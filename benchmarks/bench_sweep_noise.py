"""Parameter sweep — acoustic noise level vs pipeline quality.

Sweeps the channel's score-noise sigmas from clean to 1.5x the
calibrated operating point and measures, at each level: WER, transcript
linking accuracy and intent-detection rate.  The shape is the
deliverable: linking stays near-perfect far beyond the WER where
multi-token intent cues have collapsed — combined identity evidence +
metadata blocking degrade gracefully, phrase patterns do not.
"""

import dataclasses

import pytest

from repro.annotation.domains import (
    INTENT_CATEGORY,
    STRONG_START,
    WEAK_START,
    build_car_rental_engine,
)
from repro.asr.system import ASRSystem
from repro.asr.wer import WERBreakdown
from repro.core.pipeline import CallRecordLinker
from repro.synth.carrental import CarRentalConfig, generate_car_rental
from repro.util.tabletext import format_table

NOISE_MULTIPLIERS = (0.0, 0.5, 1.0, 1.5)
#: Smoke scale keeps the endpoints the shape assertions reference.
SMOKE_MULTIPLIERS = (0.0, 1.0)


@pytest.fixture(scope="module")
def sweep_corpus():
    """Dedicated small corpus (already smoke-sized)."""
    return generate_car_rental(
        CarRentalConfig(
            n_agents=12,
            n_days=3,
            calls_per_agent_per_day=5,
            n_customers=150,
            seed=47,
        )
    )


def _run_level(corpus, multiplier):
    system = ASRSystem.build_default(
        extra_sentences=[t.text for t in corpus.transcripts[:20]]
    )
    base = system.channel.config
    system.channel.config = dataclasses.replace(
        base,
        sigma_general=base.sigma_general * multiplier,
        sigma_name=base.sigma_name * multiplier,
        sigma_number=base.sigma_number * multiplier,
        deletion_rate=base.deletion_rate * multiplier,
        insertion_rate=base.insertion_rate * multiplier,
    )
    system.channel.reset(404)
    engine = build_car_rental_engine()
    linker = CallRecordLinker(corpus.database)
    wer = WERBreakdown()
    linked_correct = 0
    intents_detected = 0
    sales = 0
    transcripts = corpus.transcripts[20:120]
    for transcript in transcripts:
        truth = corpus.truths[transcript.call_id]
        customer_parts = []
        for speaker, text in transcript.turns:
            transcription = system.transcribe(text)
            wer.add(
                transcription.reference_tokens,
                transcription.hypothesis_tokens,
                transcription.reference_classes,
            )
            if speaker == "customer":
                customer_parts.append(
                    " ".join(transcription.hypothesis_tokens)
                )
        customer_text = " ".join(customer_parts)
        record = linker.link(
            customer_text, transcript.agent_name, transcript.day
        )
        if (
            record is not None
            and record["customer_ref"] == truth.customer_entity_id
        ):
            linked_correct += 1
        if truth.intent != "service":
            sales += 1
            opening = " ".join(customer_parts[:2])
            intents = {
                concept.canonical
                for concept in engine.annotate(opening).concepts_in(
                    INTENT_CATEGORY
                )
            }
            if intents in ({STRONG_START}, {WEAK_START}):
                intents_detected += 1
    return {
        "wer": wer.wer(),
        "link_accuracy": linked_correct / len(transcripts),
        "intent_rate": intents_detected / sales,
    }


def test_noise_sweep_degradation_shape(benchmark, sweep_corpus, smoke):
    multipliers = SMOKE_MULTIPLIERS if smoke else NOISE_MULTIPLIERS
    results = benchmark.pedantic(
        lambda: {
            multiplier: _run_level(sweep_corpus, multiplier)
            for multiplier in multipliers
        },
        rounds=1,
        iterations=1,
    )

    rows = [
        [
            f"x{multiplier}",
            f"{level['wer']:.1%}",
            f"{level['link_accuracy']:.1%}",
            f"{level['intent_rate']:.1%}",
        ]
        for multiplier, level in results.items()
    ]
    print()
    print(
        format_table(
            ["noise", "WER", "link accuracy", "intent detected"],
            rows,
            title="Sweep — channel noise vs pipeline quality "
            "(x1.0 = Table I operating point)",
        )
    )

    # WER rises monotonically with noise.
    wers = [results[m]["wer"] for m in multipliers]
    assert all(a <= b + 0.02 for a, b in zip(wers, wers[1:]))
    # Near-clean channel: the residual ~5% WER is the language model
    # overriding acoustically-close words (a real ASR failure mode —
    # strong LMs flip rare-but-correct words), which already clips some
    # multi-token intent cues.
    assert results[0.0]["wer"] < 0.10
    assert results[0.0]["link_accuracy"] > 0.9
    assert results[0.0]["intent_rate"] > 0.6
    # Intent detection decays monotonically with noise.
    intents = [results[m]["intent_rate"] for m in multipliers]
    assert all(a >= b - 0.05 for a, b in zip(intents, intents[1:]))
    # At the calibrated operating point linking still works while
    # intent patterns have collapsed — the graceful/brittle contrast.
    assert results[1.0]["link_accuracy"] > 0.75
    assert results[1.0]["intent_rate"] < 0.6
    assert (
        results[1.0]["link_accuracy"] > results[1.0]["intent_rate"]
    )
