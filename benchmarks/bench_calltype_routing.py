"""E13 — related-work substrate: call-type classification / routing.

Paper §II cites call-type classification [21] and automatic call
routing [10][7] as the automation the field had; BIVoC's pitch is that
categorising calls is not the same as mining *business* insight.  The
bench quantifies both halves:

* full transcripts classify near-perfectly (the outcome language is in
  the text) — categorisation is easy;
* opening utterances route service calls well but cannot predict the
  reservation/unbooked outcome — which is exactly why Table III's
  *conditional* analysis, not routing, is where the insight lives.
"""

import pytest

from repro.core.calltype import CallTypeClassifier, evaluate_call_routing
from repro.util.tabletext import format_table


def _openings(corpus):
    openings = []
    labels = []
    for transcript in corpus.transcripts:
        customer = [
            text
            for speaker, text in transcript.turns
            if speaker == "customer"
        ]
        openings.append(" ".join(customer[:1]))
        labels.append(corpus.truths[transcript.call_id].call_type)
    return openings, labels


def test_call_routing_full_vs_opening(benchmark, car_corpus):
    corpus = car_corpus
    full_texts = [t.text for t in corpus.transcripts]
    labels = [
        corpus.truths[t.call_id].call_type for t in corpus.transcripts
    ]
    openings, opening_labels = _openings(corpus)
    cut = len(full_texts) * 3 // 4

    def run():
        full = CallTypeClassifier().fit(full_texts[:cut], labels[:cut])
        opening = CallTypeClassifier().fit(
            openings[:cut], opening_labels[:cut]
        )
        return (
            evaluate_call_routing(full, full_texts[cut:], labels[cut:]),
            evaluate_call_routing(
                opening, openings[cut:], opening_labels[cut:]
            ),
        )

    full_report, opening_report = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    def service_recall(report):
        hit = report.confusion.get(("service", "service"), 0)
        total = sum(
            count
            for (true, _), count in report.confusion.items()
            if true == "service"
        )
        return hit / total if total else 0.0

    def outcome_accuracy(report):
        """Accuracy restricted to sales calls (reservation/unbooked)."""
        hit = sum(
            count
            for (true, predicted), count in report.confusion.items()
            if true in ("reservation", "unbooked") and true == predicted
        )
        total = sum(
            count
            for (true, _), count in report.confusion.items()
            if true in ("reservation", "unbooked")
        )
        return hit / total if total else 0.0

    rows = [
        [
            "full transcript",
            f"{full_report.accuracy:.1%}",
            f"{service_recall(full_report):.1%}",
            f"{outcome_accuracy(full_report):.1%}",
        ],
        [
            "opening utterance only",
            f"{opening_report.accuracy:.1%}",
            f"{service_recall(opening_report):.1%}",
            f"{outcome_accuracy(opening_report):.1%}",
        ],
    ]
    print()
    print(
        format_table(
            ["input", "overall acc", "service recall",
             "sales-outcome acc"],
            rows,
            title="E13 — call-type classification / routing substrate",
        )
    )

    assert full_report.accuracy > 0.9
    assert service_recall(opening_report) > 0.8
    # From the opening alone the outcome is genuinely uncertain: the
    # classifier beats chance (intent correlates with outcome) but
    # stays far from the full-transcript ceiling.
    assert outcome_accuracy(opening_report) < 0.85
