"""E5 — Paper Table IV: agent utterance vs customer objection result.

    Value selling:  59% reservation / 41% unbooked
    Discount:       72% reservation / 28% unbooked

Also reproduces the paper's companion finding that successful agents
convert weak starts by offering discounts (relative-frequency analysis
over weak-start reservations).
"""

import pytest

from repro.mining.index import field_key
from repro.mining.relfreq import relative_frequency
from repro.mining.reports import outcome_percentage_table

PAPER = {"value_selling": 0.59, "discount": 0.72}


def test_table4_agent_utterance_vs_outcome(benchmark, clean_study,
                                           smoke):
    study = clean_study

    def shares():
        return study.utterance_shares()

    measured = benchmark.pedantic(shares, rounds=1, iterations=1)

    print()
    for name, table in study.utterance_tables.items():
        print(
            outcome_percentage_table(
                table,
                title=f"Table IV — agent utterance ({name}) vs result",
                col_order=["reservation", "unbooked"],
            )
        )
        print()
    value_selling = measured["value_selling"]["True"]["reservation"]
    discount = measured["discount"]["True"]["reservation"]
    print(
        f"paper: value selling 59%/41%, discount 72%/28%; "
        f"measured: value selling {value_selling:.1%}, "
        f"discount {discount:.1%}"
    )

    tolerance = 0.12 if smoke else 0.06  # smaller corpus, wider draw
    assert value_selling == pytest.approx(
        PAPER["value_selling"], abs=tolerance
    )
    assert discount == pytest.approx(PAPER["discount"], abs=tolerance)
    # Discount is the stronger lever and both beat the base rate.
    base = measured["value_selling"]["False"]["reservation"]
    assert discount > value_selling > base


def test_weak_start_conversions_driven_by_discounts(
    benchmark, clean_study
):
    """Paper §V-B: "by analyzing the Weak start calls that were
    successful, we found that in these calls agents were offering more
    discounts"."""
    index = clean_study.analysis.index
    results = benchmark.pedantic(
        lambda: relative_frequency(
            index,
            [
                field_key("detected_intent", "weak"),
                field_key("call_type", "reservation"),
            ],
            ("field", "agent_discount"),
        ),
        rounds=1,
        iterations=1,
    )
    by_value = {result.key[2]: result for result in results}
    print()
    print(
        "discount rate among successful weak starts vs population: "
        f"relative frequency {by_value['True'].relative_frequency:.2f}"
    )
    # Discounts are over-represented among converted weak starts.
    assert by_value["True"].relative_frequency > 1.3


def test_good_agents_use_value_selling_more(benchmark, clean_study,
                                            car_corpus):
    """SecV-B: "good agents in general used value selling phrases more
    often resulting in more bookings" — the mined per-agent conduct
    must correlate positively with the warehouse booking ratio."""
    from repro.core.usecases.agent_productivity import (
        conduct_outcome_correlation,
        mine_agent_conduct,
    )

    conduct = benchmark.pedantic(
        lambda: mine_agent_conduct(
            clean_study.analysis, car_corpus.database
        ),
        rounds=1,
        iterations=1,
    )
    correlation = conduct_outcome_correlation(conduct)
    print()
    print(
        f"corr(mined value-selling rate, booking ratio) over "
        f"{len(conduct)} agents: {correlation:+.3f}"
    )
    assert correlation > 0.05
