"""Query serving: cold/warm latency, cache hit ratio, reader throughput.

The serving subsystem (``repro.serve``) promises that a cached,
snapshot-isolated answer is the *same object of information* as the
one-shot batch analytic — ``==``, never approximately.  This bench
measures what that layer costs and emits the trajectory artifact:

* per-kind cold (computed) vs warm (cache hit) latency;
* the deterministic serial cache hit ratio over a fixed workload;
* sustained queries/sec with 1, 4 and 8 concurrent reader threads;
* ``cache_correct`` as the gated correctness metric (1 = every served
  answer, cold and cached, equalled the batch computation exactly).
"""

import threading
import time

from repro.obs import MetricsRegistry, activated
from repro.serve import QueryCache, QueryEngine, QuerySpec, plan_query
from repro.stream import EpochStore
from repro.util.tabletext import format_table

from benchjson import emit

READER_COUNTS = [1, 4, 8]
REPEATS = 5          # serial repeats per payload for the hit ratio
WORKLOAD_ROUNDS = 30  # per-reader rounds over the payload mix


def _payloads(index):
    """The served query mix over the pipeline-built car-rental index."""
    trend_key = index.keys_of_dimension(("concept", "vehicle type"))[0]
    return {
        "relfreq": {
            "kind": "relfreq",
            "focus": [["field", "call_type", "unbooked"]],
            "candidates": ["concept", "place"],
        },
        "assoc2d": {
            "kind": "assoc2d",
            "rows": ["concept", "place"],
            "cols": ["concept", "vehicle type"],
        },
        "trends": {"kind": "trends", "key": list(trend_key)},
        "emerging": {
            "kind": "emerging",
            "dimension": ["concept", "vehicle type"],
            "min_total": 1,
        },
        "cube": {
            "kind": "cube",
            "dimensions": [["concept", "place"],
                           ["field", "call_type"]],
        },
        "drilldown": {"kind": "drilldown", "keys": [list(trend_key)]},
    }


def _hit_ratio(epochs, specs):
    """Deterministic serial hit ratio: REPEATS passes over the mix."""
    metrics = MetricsRegistry()
    engine = QueryEngine(epochs, cache=QueryCache(capacity=64))
    with activated(None, metrics):
        for _ in range(REPEATS):
            for spec in specs.values():
                engine.query(spec)
    counters = metrics.snapshot()["counters"]
    hits = counters.get("query.cache_hits", 0)
    misses = counters.get("query.cache_misses", 0)
    return hits / (hits + misses) if hits + misses else 0.0


def _throughput(epochs, specs, readers):
    """Sustained queries/sec with ``readers`` concurrent clients."""
    engine = QueryEngine(epochs, cache=QueryCache(capacity=64))
    items = list(specs.values())
    per_reader = WORKLOAD_ROUNDS * len(items)
    barrier = threading.Barrier(readers + 1)

    def worker(offset):
        barrier.wait()
        for i in range(per_reader):
            engine.query(items[(i + offset) % len(items)])

    threads = [
        threading.Thread(target=worker, args=(n,))
        for n in range(readers)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    return (readers * per_reader) / elapsed if elapsed else 0.0


def test_query_serving(clean_study, smoke):
    """Latency + throughput of the serving layer, gated on exactness."""
    index = clean_study.analysis.index
    epochs = EpochStore()
    epochs.publish(index, len(index) - 1)
    specs = {
        name: QuerySpec.parse(dict(payload))
        for name, payload in _payloads(index).items()
    }

    engine = QueryEngine(epochs, cache=QueryCache(capacity=64))
    cache_correct = 1
    cold_ms = {}
    warm_ms = {}
    for name, spec in specs.items():
        start = time.perf_counter()
        first = engine.query(spec)
        cold_ms[name] = (time.perf_counter() - start) * 1000.0
        start = time.perf_counter()
        again = engine.query(spec)
        warm_ms[name] = (time.perf_counter() - start) * 1000.0
        reference = plan_query(spec, index)
        exact = (
            first.value == reference
            and again.value == reference
            and again.cached
            and not first.cached
        )
        cache_correct = cache_correct if exact else 0

    hit_ratio = _hit_ratio(epochs, specs)
    throughput = {
        str(readers): _throughput(epochs, specs, readers)
        for readers in READER_COUNTS
    }

    print()
    print(
        format_table(
            ["kind", "cold", "warm (cached)"],
            [
                [name, f"{cold_ms[name]:.2f} ms",
                 f"{warm_ms[name]:.3f} ms"]
                for name in specs
            ],
            title=(
                f"query serving over {len(index):,} documents "
                f"(epoch {epochs.current().epoch})"
            ),
        )
    )
    print(
        "  queries/sec: "
        + ", ".join(
            f"{readers} reader(s) = {qps:,.0f}"
            for readers, qps in throughput.items()
        )
        + f"; serial hit ratio {hit_ratio:.3f}"
    )

    assert cache_correct == 1
    emit(
        "query",
        {
            "bench": "query",
            "smoke": smoke,
            "documents": len(index),
            "cache_correct": cache_correct,
            "hit_ratio": hit_ratio,
            "cold_latency_ms": cold_ms,
            "warm_latency_ms": warm_ms,
            "queries_per_sec": throughput,
        },
    )
