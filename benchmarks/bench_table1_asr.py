"""E1 — Paper Table I: ASR word error rates.

Paper reports, on car-booking + banking conversational speech:

    Entire Speech  45%
    Names          65%
    Numbers        45%

The bench transcribes a mixed test set through the calibrated channel
and prints the measured per-class WER.
"""

import pytest

from repro.asr.calibrate import measure_wer
from repro.asr.system import ASRSystem
from repro.asr.vocabulary import NAME_CLASS, NUMBER_CLASS
from repro.synth.banking import generate_banking_calls
from repro.synth.carrental import CarRentalConfig, generate_car_rental
from repro.util.tabletext import format_table

PAPER = {"overall": 0.45, "names": 0.65, "numbers": 0.45}


@pytest.fixture(scope="module")
def asr_setup(smoke):
    """Calibrated system + mixed test set (smaller at smoke scale)."""
    corpus = generate_car_rental(
        CarRentalConfig(
            n_agents=15,
            n_days=3,
            calls_per_agent_per_day=5,
            n_customers=200,
            seed=3,
        )
    )
    system = ASRSystem.build_default(
        extra_sentences=[t.text for t in corpus.transcripts[:30]]
    )
    end = 80 if smoke else 130
    banking = 15 if smoke else 40
    test_set = [t.text for t in corpus.transcripts[30:end]] + [
        c.text for c in generate_banking_calls(banking, seed=5)
    ]
    return system, test_set


def test_table1_asr_wer(benchmark, asr_setup, smoke):
    from benchjson import emit

    system, test_set = asr_setup

    breakdown = benchmark.pedantic(
        lambda: measure_wer(system, test_set, reset_seed=1234),
        rounds=1,
        iterations=1,
    )

    measured = {
        "overall": breakdown.wer(),
        "names": breakdown.wer(NAME_CLASS),
        "numbers": breakdown.wer(NUMBER_CLASS),
    }
    rows = [
        ["Entire Speech", f"{PAPER['overall']:.0%}",
         f"{measured['overall']:.1%}"],
        ["Names", f"{PAPER['names']:.0%}", f"{measured['names']:.1%}"],
        ["Numbers", f"{PAPER['numbers']:.0%}",
         f"{measured['numbers']:.1%}"],
    ]
    print()
    print(
        format_table(
            ["Entity", "WER (paper)", "WER (measured)"],
            rows,
            title="Table I — ASR performance",
        )
    )

    emit(
        "asr",
        {
            "bench": "asr",
            "smoke": smoke,
            "utterances": len(test_set),
            "overall_wer": measured["overall"],
            "names_wer": measured["names"],
            "numbers_wer": measured["numbers"],
        },
    )

    # Shape assertions: names are the hardest class; rates are in the
    # paper's neighbourhood (slightly wider on the smoke test set).
    assert measured["names"] > measured["overall"]
    assert measured["overall"] == pytest.approx(
        0.45, abs=0.12 if smoke else 0.10
    )
    assert measured["names"] == pytest.approx(
        0.65, abs=0.18 if smoke else 0.15
    )
    assert measured["numbers"] == pytest.approx(
        0.45, abs=0.15 if smoke else 0.12
    )
