"""QueryEngine: epoch stamping, caching, pooling, observability."""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs import MetricsRegistry, Tracer, activated
from repro.serve import QueryCache, QueryEngine
from repro.stream import EpochStore

from tests.serve.corpus import make_consumer, make_pairs

ASSOC = {"kind": "assoc2d", "rows": ["field", "city"],
         "cols": ["field", "car"]}
CUBE = {"kind": "cube",
        "dimensions": [["field", "city"], ["field", "channel"]]}
TRENDS = {"kind": "trends", "key": ["field", "car", "suv"]}


def _drained_epochs(shards=0):
    """An EpochStore fully populated from the shared corpus."""
    epochs = EpochStore(history=None)
    consumer = make_consumer(make_pairs(), shards=shards, epochs=epochs)
    consumer.run()
    return epochs


class TestStamping:
    """Responses carry the epoch they answered from."""

    def test_result_carries_current_epoch_and_seq(self):
        """The stamps come from the store's current snapshot."""
        epochs = _drained_epochs()
        engine = QueryEngine(epochs)
        result = engine.query(TRENDS)
        current = epochs.current()
        assert result.epoch == current.epoch
        assert result.seq == current.seq
        assert result.kind == "trends"
        assert not result.cached

    def test_no_epoch_yet_raises_lookup_error(self):
        """Querying an unpublished store is a 503, not a crash."""
        engine = QueryEngine(EpochStore())
        with pytest.raises(LookupError):
            engine.query(TRENDS)


class TestCaching:
    """Epoch-keyed caching: hits, invalidation, bit-identity."""

    def test_repeat_query_hits_cache_with_equal_value(self):
        """The cached answer is == the freshly computed one."""
        engine = QueryEngine(_drained_epochs(), cache=QueryCache())
        first = engine.query(ASSOC)
        second = engine.query(ASSOC)
        assert not first.cached
        assert second.cached
        assert first.value == second.value
        assert first.epoch == second.epoch

    def test_equivalent_payloads_share_one_slot(self):
        """Canonicalization collapses spelling differences."""
        engine = QueryEngine(_drained_epochs(), cache=QueryCache())
        engine.query(
            {"kind": "relfreq",
             "focus": [["field", "city", "boston"]],
             "candidates": ["field", "car"],
             "filters": {"channel": "email"}}
        )
        result = engine.query(
            {"kind": "relfreq",
             "focus": [["field", "city", "boston"],
                       ["field", "channel", "email"]],
             "candidates": ["field", "car"]}
        )
        assert result.cached

    def test_epoch_advance_invalidates(self):
        """New epoch -> old entries purged, fresh computation."""
        pairs = make_pairs()
        epochs = EpochStore(history=None)
        consumer = make_consumer(pairs, epochs=epochs)
        cache = QueryCache()
        engine = QueryEngine(epochs, cache=cache)
        assert consumer.step()
        engine.query(ASSOC)
        assert len(cache) == 1
        assert consumer.step()
        result = engine.query(ASSOC)
        assert not result.cached          # recomputed at the new epoch
        assert len(cache) == 1            # stale entry was evicted

    def test_status_is_never_cached(self):
        """Status bypasses the cache so counters stay live."""
        cache = QueryCache()
        engine = QueryEngine(_drained_epochs(), cache=cache)
        engine.query({"kind": "status"})
        engine.query({"kind": "status"})
        assert len(cache) == 0

    def test_status_body_merges_cache_and_workers(self):
        """The status value reports cache occupancy and pool size."""
        engine = QueryEngine(
            _drained_epochs(), workers=3, cache=QueryCache(capacity=9)
        )
        with engine:
            engine.query(ASSOC)
            body = engine.query({"kind": "status"}).value
        assert body["cache"]["entries"] == 1
        assert body["cache"]["capacity"] == 9
        assert body["workers"] == 3
        assert body["documents"] == len(make_pairs())


class TestPooling:
    """Hoisted pools: bit-identical to serial, owned vs injected."""

    @pytest.mark.parametrize("shards", [1, 4])
    def test_pooled_equals_serial(self, shards):
        """Every kind answers identically with and without a pool."""
        epochs = _drained_epochs(shards=shards)
        serial = QueryEngine(epochs)
        with QueryEngine(epochs, workers=4) as pooled:
            for payload in (ASSOC, CUBE, TRENDS):
                assert (
                    pooled.query(payload).value
                    == serial.query(payload).value
                )

    def test_injected_pool_is_not_shut_down(self):
        """An external executor survives engine.close()."""
        pool = ThreadPoolExecutor(max_workers=2)
        try:
            engine = QueryEngine(_drained_epochs(shards=2), pool=pool)
            engine.query(ASSOC)
            engine.close()
            assert pool.submit(lambda: 7).result() == 7
        finally:
            pool.shutdown(wait=True)

    def test_pool_and_workers_are_exclusive(self):
        """Passing both configurations is an error."""
        pool = ThreadPoolExecutor(max_workers=2)
        try:
            with pytest.raises(ValueError):
                QueryEngine(EpochStore(), pool=pool, workers=4)
        finally:
            pool.shutdown(wait=True)


class TestObservability:
    """Spans and metrics are write-only: traced == untraced."""

    def test_traced_results_equal_untraced(self):
        """Activating tracer + metrics never changes an answer."""
        epochs = _drained_epochs()
        bare = QueryEngine(epochs).query(ASSOC)
        tracer = Tracer(clock=lambda: 0.0)
        metrics = MetricsRegistry()
        with activated(tracer, metrics):
            traced = QueryEngine(epochs, cache=QueryCache()).query(ASSOC)
        assert traced.value == bare.value
        spans = tracer.finished()
        roots = [s for s in spans if s.parent_id is None]
        assert [s.name for s in roots] == ["query:assoc2d"]
        # The analytic's own spans nest under the query span.
        assert "analytic:associate" in {s.name for s in spans}

    def test_latency_histogram_and_counters(self):
        """Each query lands in the histogram and the request counters."""
        metrics = MetricsRegistry()
        engine = QueryEngine(_drained_epochs(), cache=QueryCache())
        with activated(None, metrics):
            engine.query(ASSOC)
            engine.query(ASSOC)
        snap = metrics.snapshot()
        assert snap["counters"]["query.requests"] == 2
        assert snap["counters"]["query.requests.assoc2d"] == 2
        assert snap["counters"]["query.cache_hits"] == 1
        assert snap["counters"]["query.cache_misses"] == 1
        assert snap["histograms"]["query.latency_s"]["count"] == 2
