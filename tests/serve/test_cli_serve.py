"""``bivoc serve``: end-to-end CLI serving, warm start, shutdown."""

import json
import threading
import time
import urllib.request

import pytest

from repro.cli import main


def _serve_in_thread(argv):
    """Run ``main(argv)`` on a thread; returns (thread, result box)."""
    box = {}

    def run():
        """Capture the CLI exit code for the joining test."""
        box["code"] = main(argv)

    thread = threading.Thread(target=run)
    thread.start()
    return thread, box


def _await_ready(path, timeout=30.0):
    """Poll the --ready-file until the server reports its address."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            with open(path, encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, json.JSONDecodeError):
            time.sleep(0.05)
    raise AssertionError(f"server never wrote ready file {path}")


def _post(base, path, payload):
    """POST JSON to the served API."""
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return json.loads(response.read())


def _get(base, path):
    """GET JSON from the served API."""
    with urllib.request.urlopen(base + path, timeout=10) as response:
        return json.loads(response.read())


def _await_drained(base, timeout=30.0):
    """Poll /status until the committed epoch stops advancing."""
    deadline = time.monotonic() + timeout
    last = None
    stable = 0
    while time.monotonic() < deadline:
        body = _get(base, "/status")
        if body["epoch"] == last:
            stable += 1
            if stable >= 3:
                return body
        else:
            stable = 0
            last = body["epoch"]
        time.sleep(0.1)
    raise AssertionError("ingestion never settled")


@pytest.fixture()
def serve_args(tmp_path):
    """Small-corpus baseline argv; tests extend it."""
    ready = tmp_path / "ready.json"
    return ready, [
        "serve", "--source", "carrental", "--agents", "4",
        "--days", "2", "--port", "0",
        "--ready-file", str(ready),
    ]


def test_serve_answers_and_shuts_down_gracefully(serve_args):
    """The CLI server ingests, answers queries, and drains on request."""
    ready, argv = serve_args
    thread, box = _serve_in_thread(argv + ["--shards", "2",
                                           "--query-workers", "2"])
    try:
        info = _await_ready(ready)
        base = f"http://{info['host']}:{info['port']}"
        status = _get(base, "/status")
        assert status["result"]["shards"] == 2
        body = _post(
            base, "/query",
            {"kind": "cube", "dimensions": [["field", "channel"]]},
        )
        assert body["kind"] == "cube"
        assert body["epoch"] >= -1
        assert _post(base, "/shutdown", {}) == {"stopping": True}
    finally:
        thread.join(timeout=60)
    assert not thread.is_alive()
    assert box["code"] == 0
    # A clean drain removes the ready file: a stale address must not
    # outlive the server that wrote it (supervisors poll this path).
    assert not ready.exists()


def test_serve_warm_starts_from_checkpoint(serve_args, tmp_path):
    """A second run with the same --checkpoint resumes, not replays."""
    ready, argv = serve_args
    checkpoint = tmp_path / "serve.ckpt"
    argv = argv + ["--checkpoint", str(checkpoint),
                   "--checkpoint-interval", "1"]

    thread, box = _serve_in_thread(list(argv))
    info = _await_ready(ready)
    base = f"http://{info['host']}:{info['port']}"
    first = _await_drained(base)
    _post(base, "/shutdown", {})
    thread.join(timeout=60)
    assert box["code"] == 0
    assert checkpoint.exists()

    # The drained first run already removed its own ready file, so the
    # second run's _await_ready cannot read a stale address.
    assert not ready.exists()
    thread, box = _serve_in_thread(list(argv))
    info = _await_ready(ready)
    base = f"http://{info['host']}:{info['port']}"
    second = _await_drained(base)
    _post(base, "/shutdown", {})
    thread.join(timeout=60)
    assert box["code"] == 0
    # The warm-started server sees the same fully drained corpus.
    assert second["result"]["documents"] == first["result"]["documents"]
    assert second["epoch"] >= first["epoch"]
