"""Tests for the query-serving subsystem (repro.serve)."""
