"""Shared stream corpus + wiring for the serving tests.

One deterministic synthetic feed (structured city/car/channel fields
plus a coarse time bucket) used by the epoch, engine, server and
stress tests, together with the two constructions the bit-identity
assertions compare:

* :func:`make_consumer` — the *streaming* side: a
  :class:`~repro.stream.consumer.StreamConsumer` indexing the feed and
  publishing epoch snapshots;
* :func:`reference_index` — the *batch* side: a fresh index built
  directly from the same stream prefix, with no streaming machinery
  involved.

A served answer at epoch ``e`` must equal (``==``) the analytic run
against ``reference_index(pairs, e)`` — that is the snapshot-isolation
contract.
"""

from repro.engine import Document
from repro.mining.index import ConceptIndex
from repro.mining.sharded import ShardedConceptIndex
from repro.mining.stage import ConceptIndexStage
from repro.stream import MemorySource, StreamConsumer
from repro.util.rng import derive_rng

CITIES = ["seattle", "boston", "denver"]
CARS = ["suv", "compact", "luxury"]
CHANNELS = ["call", "email", "sms"]

N_DOCS = 48       # not a multiple of BATCH_DOCS: ragged final epoch
BATCH_DOCS = 7


def make_pairs(n=N_DOCS, seed=11):
    """Deterministic ``(timestamp, document)`` arrivals; fresh each call."""
    rng = derive_rng(seed, "serve-test-corpus")
    pairs = []
    for i in range(n):
        fields = {
            "city": rng.choice(CITIES),
            "car": rng.choice(CARS),
            "channel": rng.choice(CHANNELS),
        }
        document = Document(
            doc_id=f"d{i}",
            channel=fields["channel"],
            text=f"voice of customer {i}",
            artifacts={"index_fields": fields},
        )
        pairs.append((i // 10, document))
    return pairs


def _new_index(shards, keep_documents=False):
    """A fresh empty index in the requested layout."""
    if shards:
        return ShardedConceptIndex(shards, keep_documents=keep_documents)
    return ConceptIndex(keep_documents=keep_documents)


def reference_index(pairs, upto_offset, shards=0):
    """Batch-build the index for the stream prefix ``[0, upto_offset]``.

    Mirrors exactly what :class:`ConceptIndexStage` does per document
    (fields + timestamp, no stored text) but with no consumer, no
    batching, no snapshots — the independent reference the served
    answers are compared against.
    """
    index = _new_index(shards)
    for offset, (timestamp, document) in enumerate(pairs):
        if offset > upto_offset:
            break
        index.add(
            document.doc_id,
            fields=document.artifacts["index_fields"],
            timestamp=timestamp,
            on_duplicate="replace",
        )
    return index


def make_consumer(pairs, shards=0, epochs=None, batch_docs=BATCH_DOCS,
                  workers=0):
    """A stream consumer indexing ``pairs``, publishing into ``epochs``."""
    return StreamConsumer(
        MemorySource(pairs),
        [ConceptIndexStage(on_duplicate="replace", shards=shards)],
        batch_docs=batch_docs,
        workers=workers,
        epochs=epochs,
    )
