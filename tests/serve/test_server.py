"""HTTP frontend vs in-process client: one API, two transports."""

import json
import urllib.error
import urllib.request

import pytest

from repro.serve import InsightServer, LocalClient, QueryCache, QueryEngine
from repro.stream import EpochStore

from tests.serve.corpus import make_consumer, make_pairs


@pytest.fixture(scope="module")
def engine():
    """One engine over the fully drained shared corpus."""
    epochs = EpochStore(history=None)
    make_consumer(make_pairs(), shards=2, epochs=epochs).run()
    engine = QueryEngine(epochs, cache=QueryCache())
    yield engine
    engine.close()


@pytest.fixture()
def server(engine):
    """A running HTTP server on an ephemeral port."""
    with InsightServer(engine, port=0) as server:
        yield server


def _post(server, path, payload):
    """POST JSON; returns (status, body) without raising on 4xx."""
    request = urllib.request.Request(
        f"http://{server.host}:{server.port}{path}",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _get(server, path):
    """GET; returns (status, body) without raising on 4xx."""
    try:
        with urllib.request.urlopen(
            f"http://{server.host}:{server.port}{path}", timeout=10
        ) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestTransportParity:
    """HTTP and LocalClient return byte-equal JSON bodies."""

    def test_query_bodies_match(self, engine, server):
        """Same payload, same body over both transports."""
        payload = {"kind": "assoc2d", "rows": ["field", "city"],
                   "cols": ["field", "car"]}
        local = LocalClient(engine)
        local.query(payload)  # warm the cache so both reads are cached
        status, http_body = _post(server, "/query", payload)
        assert status == 200
        assert http_body == local.query(payload)

    def test_status_bodies_match(self, engine, server):
        """The health view is identical over both transports."""
        status, http_body = _get(server, "/status")
        assert status == 200
        local_body = LocalClient(engine).status()
        assert http_body["result"]["documents"] == (
            local_body["result"]["documents"]
        )
        assert http_body["epoch"] == local_body["epoch"]

    def test_healthz_aliases_status(self, engine, server):
        """/healthz serves the same view as /status."""
        _, healthz = _get(server, "/healthz")
        _, status = _get(server, "/status")
        assert healthz["result"] == status["result"]

    def test_response_carries_epoch_stamp(self, engine, server):
        """Every HTTP answer reports the epoch it was computed at."""
        status, body = _post(
            server, "/query",
            {"kind": "trends", "key": ["field", "car", "suv"]},
        )
        assert status == 200
        assert body["epoch"] == engine.epochs.current().epoch


class TestErrorMapping:
    """Spec errors map to 400, unknown routes to 404."""

    def test_unknown_kind_is_400(self, engine, server):
        """QueryError surfaces as a 400 with the message."""
        status, body = _post(server, "/query", {"kind": "nope"})
        assert status == 400
        assert "unknown query kind" in body["error"]

    def test_invalid_json_is_400(self, engine, server):
        """A non-JSON body is rejected before planning."""
        request = urllib.request.Request(
            f"http://{server.host}:{server.port}/query",
            data=b"not json {",
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_invalid_json_body_is_structured(self, engine, server):
        """The 400 body carries both prose and a machine code."""
        request = urllib.request.Request(
            f"http://{server.host}:{server.port}/query",
            data=b"{ torn",
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        body = json.loads(excinfo.value.read())
        assert body["code"] == "invalid-json"
        assert body["error"]

    def test_empty_body_is_400_with_code(self, engine, server):
        """A bodyless POST answers a coded 400, not a parse crash."""
        request = urllib.request.Request(
            f"http://{server.host}:{server.port}/query",
            data=b"",
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400
        assert json.loads(excinfo.value.read())["code"] == "empty-body"

    def test_unknown_kind_body_carries_code(self, engine, server):
        """Spec rejections are branchable without parsing prose."""
        status, body = _post(server, "/query", {"kind": "nope"})
        assert status == 400
        assert body["code"] == "bad-request"

    def test_oversized_body_is_413(self, engine, server):
        """A body past the 1 MiB cap is refused before being read.

        The server answers from the declared Content-Length without
        consuming the payload, so the upload may be cut off mid-write
        — the client must still find the 413 waiting.
        """
        import http.client

        payload = json.dumps(
            {"kind": "status", "pad": "x" * (1 << 20)}
        ).encode("utf-8")
        connection = http.client.HTTPConnection(
            server.host, server.port, timeout=10
        )
        try:
            connection.putrequest("POST", "/query")
            connection.putheader("Content-Type", "application/json")
            connection.putheader("Content-Length", str(len(payload)))
            connection.endheaders()
            try:
                connection.send(payload)
            except (BrokenPipeError, ConnectionResetError):
                pass  # refused mid-upload; the 413 is already queued
            response = connection.getresponse()
            assert response.status == 413
            assert json.loads(response.read())["code"] == (
                "body-too-large"
            )
        finally:
            connection.close()

    def test_unknown_route_is_404(self, engine, server):
        """Unrouted paths answer 404 on both verbs."""
        assert _get(server, "/nope")[0] == 404
        assert _post(server, "/nope", {})[0] == 404

    def test_unpublished_store_is_503(self):
        """A warming server (no epoch yet) answers 503."""
        engine = QueryEngine(EpochStore())
        with InsightServer(engine, port=0) as server:
            status, body = _get(server, "/status")
        assert status == 503
        assert "no epoch" in body["error"]

    def test_local_client_raises_matching_errors(self, engine):
        """LocalClient maps 400/503 back onto the engine exceptions."""
        from repro.serve import QueryError

        client = LocalClient(engine)
        with pytest.raises(QueryError):
            client.query({"kind": "nope"})
        with pytest.raises(LookupError):
            LocalClient(QueryEngine(EpochStore())).status()


class TestShutdown:
    """POST /shutdown signals the owner; stop() drains and frees."""

    def test_shutdown_signals_owner_and_port_is_freed(self, engine):
        """The shutdown round-trip completes and the port closes."""
        server = InsightServer(engine, port=0).start()
        port = server.port
        assert not server.wait(timeout=0)
        status, body = _post(server, "/shutdown", {})
        assert status == 200 and body == {"stopping": True}
        assert server.wait(timeout=10)
        server.stop()
        with pytest.raises(OSError):
            urllib.request.urlopen(
                f"http://127.0.0.1:{port}/status", timeout=2
            )

    def test_stop_is_idempotent(self, engine):
        """Calling stop twice (or before start) never raises."""
        server = InsightServer(engine, port=0)
        server.stop()
        running = InsightServer(engine, port=0).start()
        running.stop()
        running.stop()
