"""Concurrency stress: one writer ingesting, N readers querying.

The acceptance bar for the serving subsystem: while a consumer commits
micro-batches, concurrent readers issue analytic queries and *every*
response must be ``==`` to the batch computation over the exact stream
prefix named by its epoch stamp — serial and pooled, single-index and
sharded, with tracing active.  A torn read (a response mixing two
epochs, or observing a half-applied batch) cannot produce a value that
equals any prefix's batch reference, so the equality sweep doubles as
the no-torn-read check.
"""

import threading

import pytest

from repro.obs import MetricsRegistry, Tracer, activated
from repro.serve import QueryCache, QueryEngine, QuerySpec, plan_query
from repro.stream import EpochStore

from tests.serve.corpus import make_consumer, make_pairs, reference_index

N_READERS = 4
QUERIES_PER_READER = 30

PAYLOADS = [
    {"kind": "assoc2d", "rows": ["field", "city"],
     "cols": ["field", "car"]},
    {"kind": "relfreq", "focus": [["field", "city", "boston"]],
     "candidates": ["field", "car"], "min_focus_count": 0},
    {"kind": "trends", "key": ["field", "car", "suv"],
     "filters": {"buckets": [0, 4]}},
    {"kind": "emerging", "dimension": ["field", "channel"],
     "min_total": 1},
    {"kind": "cube",
     "dimensions": [["field", "city"], ["field", "channel"]]},
    {"kind": "drilldown", "keys": [["field", "car", "suv"]],
     "filters": {"channel": "email"}},
]


@pytest.mark.parametrize("shards", [1, 4])
@pytest.mark.parametrize("workers", [0, 2])
def test_reader_responses_equal_batch_reference(shards, workers):
    """Every concurrent response == its epoch's batch computation."""
    pairs = make_pairs()
    epochs = EpochStore(history=None)  # retain every epoch to verify
    consumer = make_consumer(pairs, shards=shards, epochs=epochs)
    # Commit one batch up front: association analysis (correctly)
    # refuses an empty index, so readers start at a non-empty epoch.
    assert consumer.step()
    engine = QueryEngine(
        epochs, workers=workers, cache=QueryCache(capacity=32)
    )
    specs = [QuerySpec.parse(dict(p)) for p in PAYLOADS]

    start = threading.Barrier(N_READERS + 1)
    samples = []       # (epoch, spec_index, value) observations
    samples_lock = threading.Lock()
    errors = []

    def writer():
        """Ingest the whole stream, batch by batch."""
        start.wait()
        while consumer.step():
            pass

    def reader(rng_offset):
        """Fire rotating queries, collecting stamped responses."""
        start.wait()
        try:
            for i in range(QUERIES_PER_READER):
                spec = specs[(i + rng_offset) % len(specs)]
                result = engine.query(spec)
                with samples_lock:
                    samples.append(
                        (result.epoch, (i + rng_offset) % len(specs),
                         result.value)
                    )
        except Exception as exc:  # propagated to the main thread
            errors.append(exc)

    threads = [threading.Thread(target=writer)] + [
        threading.Thread(target=reader, args=(n,))
        for n in range(N_READERS)
    ]
    tracer = Tracer()
    with activated(tracer, MetricsRegistry()):
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    engine.close()
    assert not errors, errors

    published = set(epochs.epochs())
    observed_epochs = {epoch for epoch, _, _ in samples}
    # Every stamp names a real commit boundary: no torn epochs.
    assert observed_epochs <= published
    assert len(samples) == N_READERS * QUERIES_PER_READER

    # Re-run each distinct (epoch, spec) as a one-shot batch job on an
    # independently built index over that exact stream prefix.
    references = {}
    for epoch, spec_index, value in samples:
        key = (epoch, spec_index)
        if key not in references:
            batch_index = reference_index(pairs, epoch, shards=shards)
            references[key] = plan_query(specs[spec_index], batch_index)
        assert value == references[key]

    # Tracing was live the whole time: the query spans must be there.
    assert any(
        span.name.startswith("query:") for span in tracer.finished()
    )


def test_final_epoch_matches_full_batch():
    """After draining, the served view equals the full-corpus batch."""
    pairs = make_pairs()
    epochs = EpochStore(history=None)
    consumer = make_consumer(pairs, shards=4, epochs=epochs)
    consumer.run()
    engine = QueryEngine(epochs)
    full = reference_index(pairs, len(pairs) - 1, shards=4)
    for payload in PAYLOADS:
        spec = QuerySpec.parse(dict(payload))
        assert engine.query(spec).value == plan_query(spec, full)
