"""QuerySpec parsing, canonicalization, and plan == batch identity."""

import pytest

from repro.mining.assoc2d import associate
from repro.mining.index import concept_key, field_key
from repro.mining.olap import concept_cube
from repro.mining.relfreq import relative_frequency
from repro.mining.trends import emerging_concepts, trend_series
from repro.serve import QueryError, QuerySpec, plan_query

from tests.serve.corpus import make_pairs, reference_index

PAIRS = make_pairs()
INDEX = reference_index(PAIRS, len(PAIRS) - 1)


class TestParsing:
    """Payload validation and error surfaces."""

    def test_unknown_kind_rejected(self):
        """A typo'd kind is a QueryError, not a silent default."""
        with pytest.raises(QueryError):
            QuerySpec.parse({"kind": "relfrequency"})

    def test_unknown_parameter_rejected(self):
        """Extra parameters never silently broaden a query."""
        with pytest.raises(QueryError):
            QuerySpec.parse(
                {"kind": "trends", "key": ["field", "city", "boston"],
                 "bucket": [0, 3]}
            )

    def test_unknown_filter_rejected(self):
        """Only the declared drill-down filters are accepted."""
        with pytest.raises(QueryError):
            QuerySpec.parse(
                {"kind": "cube",
                 "dimensions": [["field", "city"]],
                 "filters": {"region": "west"}}
            )

    def test_inexpressible_filter_rejected(self):
        """A filter the kind cannot lower raises instead of ignoring."""
        with pytest.raises(QueryError):
            QuerySpec.parse(
                {"kind": "assoc2d", "rows": ["field", "city"],
                 "cols": ["field", "car"],
                 "filters": {"channel": "email"}}
            )

    def test_malformed_key_rejected(self):
        """Keys must be [kind, name, value] triples."""
        with pytest.raises(QueryError):
            QuerySpec.parse(
                {"kind": "trends", "key": ["city", "boston"]}
            )

    def test_bad_bucket_range_rejected(self):
        """The buckets filter must be an ordered [lo, hi] pair."""
        with pytest.raises(QueryError):
            QuerySpec.parse(
                {"kind": "trends",
                 "key": ["field", "city", "boston"],
                 "filters": {"buckets": [4, 1]}}
            )

    def test_cube_slice_and_rollup_exclusive(self):
        """At most one view operation per cube query."""
        with pytest.raises(QueryError):
            QuerySpec.parse(
                {"kind": "cube",
                 "dimensions": [["field", "city"], ["field", "car"]],
                 "slice": [["field", "city"], "boston"],
                 "rollup": [["field", "car"]]}
            )

    def test_cube_slice_must_name_a_cube_dimension(self):
        """Slicing on an absent dimension is refused."""
        with pytest.raises(QueryError):
            QuerySpec.parse(
                {"kind": "cube",
                 "dimensions": [["field", "city"]],
                 "slice": [["field", "car"], "suv"]}
            )

    def test_relfreq_needs_focus_and_candidates(self):
        """Empty focus or missing candidates is refused."""
        with pytest.raises(QueryError):
            QuerySpec.parse(
                {"kind": "relfreq", "candidates": ["field", "car"]}
            )
        with pytest.raises(QueryError):
            QuerySpec.parse(
                {"kind": "relfreq",
                 "focus": [["field", "city", "boston"]]}
            )


class TestCanonicalization:
    """Equivalent payloads collapse to one fingerprint."""

    def test_channel_filter_equals_explicit_focus_key(self):
        """The channel filter lowers to the same relfreq spec."""
        filtered = QuerySpec.parse(
            {"kind": "relfreq",
             "focus": [["field", "city", "boston"]],
             "candidates": ["field", "car"],
             "filters": {"channel": "email"}}
        )
        explicit = QuerySpec.parse(
            {"kind": "relfreq",
             "focus": [["field", "city", "boston"],
                       ["field", "channel", "email"]],
             "candidates": ["field", "car"]}
        )
        assert filtered == explicit
        assert filtered.fingerprint() == explicit.fingerprint()

    def test_focus_order_is_canonical(self):
        """Focus key order never splits the cache."""
        a = QuerySpec.parse(
            {"kind": "relfreq",
             "focus": [["field", "city", "boston"],
                       ["field", "car", "suv"]],
             "candidates": ["field", "channel"]}
        )
        b = QuerySpec.parse(
            {"kind": "relfreq",
             "focus": [["field", "car", "suv"],
                       ["field", "city", "boston"]],
             "candidates": ["field", "channel"]}
        )
        assert a.fingerprint() == b.fingerprint()

    def test_buckets_filter_equals_explicit_range(self):
        """[lo, hi] lowers to the same forced bucket list."""
        filtered = QuerySpec.parse(
            {"kind": "trends",
             "key": ["field", "city", "boston"],
             "filters": {"buckets": [0, 3]}}
        )
        explicit = QuerySpec.parse(
            {"kind": "trends",
             "key": ["field", "city", "boston"],
             "buckets": [0, 1, 2, 3]}
        )
        assert filtered.fingerprint() == explicit.fingerprint()

    def test_category_filter_equals_explicit_dimension(self):
        """The category filter lowers to the candidate dimension."""
        filtered = QuerySpec.parse(
            {"kind": "emerging", "filters": {"category": "issue"}}
        )
        explicit = QuerySpec.parse(
            {"kind": "emerging", "dimension": ["concept", "issue"]}
        )
        assert filtered.fingerprint() == explicit.fingerprint()

    def test_fingerprint_is_json_stable(self):
        """Fingerprints are canonical JSON of the wire form."""
        spec = QuerySpec.parse({"kind": "status"})
        assert spec.fingerprint() == (
            '{"kind":"status","params":{}}'
        )


class TestPlanIdentity:
    """plan_query == the direct batch entry point, argument for argument."""

    def test_relfreq_matches_batch(self):
        """Served relfreq equals relative_frequency on the same index."""
        spec = QuerySpec.parse(
            {"kind": "relfreq",
             "focus": [["field", "city", "boston"]],
             "candidates": ["field", "car"]}
        )
        assert plan_query(spec, INDEX) == relative_frequency(
            INDEX, [field_key("city", "boston")], ("field", "car")
        )

    def test_assoc2d_matches_batch(self):
        """Served association equals associate on the same index."""
        spec = QuerySpec.parse(
            {"kind": "assoc2d", "rows": ["field", "city"],
             "cols": ["field", "car"]}
        )
        assert plan_query(spec, INDEX) == associate(
            INDEX, ("field", "city"), ("field", "car")
        )

    def test_trends_matches_batch(self):
        """Served trends equals trend_series, filter lowered and all."""
        spec = QuerySpec.parse(
            {"kind": "trends", "key": ["field", "city", "boston"],
             "filters": {"buckets": [0, 4]}}
        )
        assert plan_query(spec, INDEX) == trend_series(
            INDEX, field_key("city", "boston"),
            buckets=[0, 1, 2, 3, 4],
        )

    def test_emerging_matches_batch(self):
        """Served emerging equals emerging_concepts."""
        spec = QuerySpec.parse(
            {"kind": "emerging", "dimension": ["field", "car"],
             "min_total": 1}
        )
        assert plan_query(spec, INDEX) == emerging_concepts(
            INDEX, ("field", "car"), min_total=1
        )

    def test_cube_matches_batch(self):
        """Served cube (and its slice) equals concept_cube."""
        spec = QuerySpec.parse(
            {"kind": "cube",
             "dimensions": [["field", "city"], ["field", "car"]]}
        )
        batch = concept_cube(
            INDEX, [("field", "city"), ("field", "car")]
        )
        assert plan_query(spec, INDEX) == batch
        sliced = QuerySpec.parse(
            {"kind": "cube",
             "dimensions": [["field", "city"], ["field", "car"]],
             "slice": [["field", "city"], "boston"]}
        )
        assert plan_query(sliced, INDEX) == batch.slice(
            ("field", "city"), "boston"
        )

    def test_cube_channel_filter_slices_channel_dimension(self):
        """The channel filter appends the dimension and slices it."""
        spec = QuerySpec.parse(
            {"kind": "cube", "dimensions": [["field", "city"]],
             "filters": {"channel": "email"}}
        )
        batch = concept_cube(
            INDEX, [("field", "city"), ("field", "channel")]
        )
        assert plan_query(spec, INDEX) == batch.slice(
            ("field", "channel"), "email"
        )

    def test_drilldown_intersects_postings(self):
        """Drill-down returns the sorted conjunction of postings."""
        spec = QuerySpec.parse(
            {"kind": "drilldown",
             "keys": [["field", "city", "boston"]],
             "filters": {"channel": "email"}}
        )
        expected = sorted(
            INDEX.documents_with(field_key("city", "boston"))
            & INDEX.documents_with(field_key("channel", "email")),
            key=str,
        )
        assert plan_query(spec, INDEX) == {
            "doc_ids": expected, "texts": None,
        }

    def test_drilldown_with_text_requires_kept_documents(self):
        """with_text against a non-keeping index is a QueryError."""
        spec = QuerySpec.parse(
            {"kind": "drilldown",
             "keys": [["field", "city", "boston"]],
             "with_text": True}
        )
        with pytest.raises(QueryError):
            plan_query(spec, INDEX)

    def test_status_returns_index_stats(self):
        """The status plan is the index's own stats dict."""
        spec = QuerySpec.parse({"kind": "status"})
        assert plan_query(spec, INDEX) == INDEX.stats()

    def test_unused_concept_key_kinds_still_parse(self):
        """Concept keys (not just field keys) round-trip through specs."""
        spec = QuerySpec.parse(
            {"kind": "drilldown",
             "keys": [["concept", "issue", "billing"]]}
        )
        assert spec.param("keys") == (
            concept_key("issue", "billing"),
        )
