"""QueryCache: LRU + TTL semantics, epoch eviction, metrics."""

import pytest

from repro.obs import MetricsRegistry, activated
from repro.serve import QueryCache


class FakeClock:
    """A manually advanced clock for deterministic TTL tests."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        """The current fake time."""
        return self.now

    def advance(self, seconds):
        """Move time forward."""
        self.now += seconds


class TestLRU:
    """Capacity-bounded least-recently-used behaviour."""

    def test_miss_then_hit(self):
        """A stored value comes back on the same (fingerprint, epoch)."""
        cache = QueryCache(capacity=4)
        hit, value = cache.get("fp", 3)
        assert not hit and value is None
        cache.put("fp", 3, {"answer": 42})
        hit, value = cache.get("fp", 3)
        assert hit and value == {"answer": 42}

    def test_epoch_is_part_of_the_key(self):
        """The same fingerprint at another epoch is a different entry."""
        cache = QueryCache(capacity=4)
        cache.put("fp", 3, "old")
        hit, _ = cache.get("fp", 9)
        assert not hit

    def test_capacity_evicts_least_recently_used(self):
        """Touching an entry protects it; the cold one is evicted."""
        cache = QueryCache(capacity=2)
        cache.put("a", 0, 1)
        cache.put("b", 0, 2)
        assert cache.get("a", 0) == (True, 1)  # refresh a
        cache.put("c", 0, 3)                   # evicts b
        assert cache.get("a", 0) == (True, 1)
        assert cache.get("b", 0) == (False, None)
        assert cache.get("c", 0) == (True, 3)
        assert len(cache) == 2

    def test_invalid_capacity_rejected(self):
        """A zero-capacity cache is a configuration error."""
        with pytest.raises(ValueError):
            QueryCache(capacity=0)


class TestTTL:
    """Optional time bound over the injected clock."""

    def test_expired_entry_misses_and_evicts(self):
        """An entry older than the TTL reads as a miss."""
        clock = FakeClock()
        cache = QueryCache(capacity=4, ttl=10.0, clock=clock)
        cache.put("fp", 0, "v")
        clock.advance(9.0)
        assert cache.get("fp", 0) == (True, "v")
        clock.advance(2.0)
        assert cache.get("fp", 0) == (False, None)
        assert len(cache) == 0

    def test_invalid_ttl_rejected(self):
        """A non-positive TTL is a configuration error."""
        with pytest.raises(ValueError):
            QueryCache(ttl=0.0)


class TestEpochEviction:
    """evict_before reclaims entries from superseded epochs."""

    def test_evicts_only_older_epochs(self):
        """Entries at or above the floor survive."""
        cache = QueryCache(capacity=8)
        cache.put("a", 3, 1)
        cache.put("b", 3, 2)
        cache.put("a", 9, 3)
        assert cache.evict_before(9) == 2
        assert cache.get("a", 9) == (True, 3)
        assert len(cache) == 1

    def test_clear_empties(self):
        """clear drops everything."""
        cache = QueryCache(capacity=8)
        cache.put("a", 0, 1)
        assert cache.clear() == 1
        assert len(cache) == 0


class TestMetrics:
    """Hit/miss/eviction counters and the size gauge."""

    def test_counters_track_operations(self):
        """Each outcome lands in its counter; the gauge tracks size."""
        metrics = MetricsRegistry()
        with activated(None, metrics):
            cache = QueryCache(capacity=1)
            cache.get("a", 0)          # miss
            cache.put("a", 0, 1)
            cache.get("a", 0)          # hit
            cache.put("b", 0, 2)       # evicts a (capacity 1)
        snap = metrics.snapshot()["counters"]
        assert snap["query.cache_misses"] == 1
        assert snap["query.cache_hits"] == 1
        assert snap["query.cache_evictions"] == 1
        gauges = metrics.snapshot()["gauges"]
        assert gauges["query.cache_size"] == 1

    def test_stats_body(self):
        """stats() reports occupancy for the status endpoint."""
        cache = QueryCache(capacity=3, ttl=5.0, clock=FakeClock())
        cache.put("a", 0, 1)
        assert cache.stats() == {
            "entries": 1, "capacity": 3, "ttl": 5.0,
        }
