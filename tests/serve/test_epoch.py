"""EpochStore: publication protocol, history, snapshot isolation."""

import pytest

from repro.mining.index import ConceptIndex, field_key
from repro.obs import MetricsRegistry, activated
from repro.stream import EpochStore

from tests.serve.corpus import make_consumer, make_pairs, reference_index


def _small_index(n=3):
    """A tiny live index with ``n`` documents."""
    index = ConceptIndex()
    for i in range(n):
        index.add_keys(
            f"d{i}", [field_key("city", "seattle")], timestamp=i
        )
    return index


class TestPublication:
    """The write side: publish, stamps, monotonicity, history."""

    def test_current_before_first_publish_raises(self):
        """An empty store refuses to answer."""
        with pytest.raises(LookupError):
            EpochStore().current()

    def test_publish_stamps_epoch_and_dense_seq(self):
        """Epochs carry the offset; seq counts publications densely."""
        store = EpochStore()
        store.publish(_small_index(), -1)
        store.publish(_small_index(), 6)
        snapshot = store.current()
        assert snapshot.epoch == 6
        assert snapshot.seq == 1
        assert store.epochs() == [-1, 6]

    def test_epoch_regression_rejected(self):
        """Offsets must be monotonic across publications."""
        store = EpochStore()
        store.publish(_small_index(), 10)
        with pytest.raises(ValueError):
            store.publish(_small_index(), 4)

    def test_republish_same_epoch_replaces_in_place(self):
        """A same-epoch re-publish swaps the snapshot, not the history."""
        store = EpochStore()
        store.publish(_small_index(2), 5)
        store.publish(_small_index(3), 5)
        assert len(store) == 1
        assert store.current().stats()["documents"] == 3
        assert store.current().seq == 1  # still a distinct publication

    def test_bounded_history_evicts_oldest(self):
        """Old epochs fall out; current is always retained."""
        store = EpochStore(history=2)
        for epoch in (0, 1, 2, 3):
            store.publish(_small_index(), epoch)
        assert store.epochs() == [2, 3]
        assert store.at(3).epoch == 3
        with pytest.raises(KeyError):
            store.at(0)

    def test_invalid_history_rejected(self):
        """A history bound below 1 is a configuration error."""
        with pytest.raises(ValueError):
            EpochStore(history=0)

    def test_publish_records_metrics(self):
        """Publication bumps the counter and the current-epoch gauges."""
        metrics = MetricsRegistry()
        store = EpochStore()
        with activated(None, metrics):
            store.publish(_small_index(3), 7)
        snap = metrics.snapshot()
        assert snap["counters"]["epoch.published"] == 1
        assert snap["gauges"]["epoch.current"] == 7
        assert snap["gauges"]["epoch.documents"] == 3


class TestSnapshotStats:
    """EpochSnapshot.stats merges index counters with the stamps."""

    def test_stats_carry_stamps(self):
        """The stats body exposes epoch and seq alongside the counts."""
        store = EpochStore()
        store.publish(_small_index(3), 9)
        stats = store.current().stats()
        assert stats["epoch"] == 9
        assert stats["seq"] == 0
        assert stats["documents"] == 3
        assert stats["shards"] == 0


class TestConsumerIntegration:
    """The consumer publishes at init, every commit, and restore."""

    def test_initial_publication_is_empty_epoch(self):
        """Before any batch, readers see the empty epoch -1."""
        epochs = EpochStore()
        make_consumer(make_pairs(), epochs=epochs)
        snapshot = epochs.current()
        assert snapshot.epoch == -1
        assert len(snapshot.index) == 0

    @pytest.mark.parametrize("shards", [0, 4])
    def test_every_commit_publishes_committed_offset(self, shards):
        """After each batch the current epoch equals the committed offset,
        and the snapshot matches the batch-built reference index."""
        pairs = make_pairs()
        epochs = EpochStore(history=None)
        consumer = make_consumer(pairs, shards=shards, epochs=epochs)
        while consumer.step():
            snapshot = epochs.current()
            assert snapshot.epoch == consumer.committed_offset
            reference = reference_index(
                pairs, snapshot.epoch, shards=shards
            )
            assert snapshot.index.stats() == reference.stats()
            assert snapshot.index.concept_keys() == (
                reference.concept_keys()
            )
            for key in reference.concept_keys():
                assert snapshot.index.documents_with(key) == (
                    reference.documents_with(key)
                )

    def test_published_snapshot_survives_later_ingestion(self):
        """A snapshot taken at epoch e never changes as the stream
        moves on — the copy-on-write isolation contract."""
        pairs = make_pairs()
        epochs = EpochStore(history=None)
        consumer = make_consumer(pairs, epochs=epochs)
        assert consumer.step()
        first = epochs.current()
        frozen_stats = first.stats()
        frozen_postings = {
            key: first.index.documents_with(key)
            for key in first.index.concept_keys()
        }
        while consumer.step():
            pass
        assert epochs.current().epoch > first.epoch
        assert first.stats() == frozen_stats
        for key, docs in frozen_postings.items():
            assert first.index.documents_with(key) == docs
