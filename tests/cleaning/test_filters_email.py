"""Tests for the language filter, spam filter and email segmentation."""

import pytest

from repro.cleaning.email import parse_email, segment_customer_text
from repro.cleaning.langfilter import LanguageFilter
from repro.cleaning.spamfilter import SpamFilter, train_default_spam_filter

RAW_EMAIL = """\
from: john smith <john.smith42@example.com>
to: care@telco.example
subject: billing complaint

dear customer care
my bill is too high and i feel robbed when paying it
my registered number is 5558675309
regards
john smith

> on month 3 customer care wrote:
> dear john smith thank you for contacting us
> we will look into your issue at the earliest

this email and any attachments are confidential and intended solely for the addressee
download our new mobile app for exclusive offers"""


class TestLanguageFilter:
    @pytest.fixture(scope="class")
    def language_filter(self):
        return LanguageFilter()

    def test_english_message_passes(self, language_filter):
        assert language_filter.is_english(
            "please confirm the receipt of payment"
        )

    def test_hindi_fragments_rejected(self, language_filter):
        assert not language_filter.is_english(
            "jaldi karo paisa wapas karo bahut kharab"
        )

    def test_mixed_message_scored(self, language_filter):
        score = language_filter.english_score(
            "my problem is not solved jaldi karo"
        )
        assert 0.0 < score < 1.0

    def test_numbers_only_pass(self, language_filter):
        assert language_filter.is_english("500 12345")

    def test_spam_vocabulary_is_english(self, language_filter):
        assert language_filter.is_english(
            "congratulations you have won a lottery claim now"
        )

    def test_empty_passes(self, language_filter):
        assert language_filter.is_english("")


class TestSpamFilter:
    @pytest.fixture(scope="class")
    def spam_filter(self):
        return train_default_spam_filter()

    def test_spam_detected(self, spam_filter):
        assert spam_filter.is_spam(
            "congratulations you have won a lottery of 90000 dollars "
            "claim now"
        )

    def test_ham_passes(self, spam_filter):
        assert not spam_filter.is_spam(
            "my bill is too high please check my account"
        )

    def test_score_in_unit_interval(self, spam_filter):
        for text in ("lottery now", "please help with my bill", ""):
            assert 0.0 <= spam_filter.spam_score(text) <= 1.0

    def test_unfitted_filter_raises(self):
        with pytest.raises(RuntimeError):
            SpamFilter().spam_score("anything")

    def test_fit_validates_classes(self):
        with pytest.raises(ValueError):
            SpamFilter().fit(["a", "b"], [True, True])

    def test_fit_validates_alignment(self):
        with pytest.raises(ValueError):
            SpamFilter().fit(["a"], [True, False])


class TestEmailSegmentation:
    def test_headers_extracted(self):
        parts = parse_email(RAW_EMAIL)
        assert "john.smith42@example.com" in parts.headers["from"]
        assert parts.headers["subject"] == "billing complaint"

    def test_customer_voice_kept(self):
        text = segment_customer_text(RAW_EMAIL)
        assert "my bill is too high" in text
        assert "registered number is 5558675309" in text

    def test_agent_voice_segregated(self):
        parts = parse_email(RAW_EMAIL)
        assert "thank you for contacting us" in parts.agent_text
        assert "thank you for contacting us" not in parts.customer_text

    def test_disclaimer_removed(self):
        text = segment_customer_text(RAW_EMAIL)
        assert "confidential" not in text

    def test_promo_footer_removed(self):
        text = segment_customer_text(RAW_EMAIL)
        assert "mobile app" not in text

    def test_greeting_and_signature_removed(self):
        text = segment_customer_text(RAW_EMAIL)
        assert not text.startswith("dear")
        assert not text.endswith("john smith")

    def test_plain_text_no_structure(self):
        assert segment_customer_text("just a plain note") == (
            "just a plain note"
        )

    def test_empty_email(self):
        assert segment_customer_text("") == ""
