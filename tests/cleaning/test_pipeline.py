"""Integration tests for the assembled cleaning pipeline."""

import pytest

from repro.cleaning.pipeline import CleaningPipeline
from repro.synth.telecom import TelecomConfig, generate_telecom


@pytest.fixture(scope="module")
def corpus():
    return generate_telecom(TelecomConfig(scale=0.004, n_customers=300))


@pytest.fixture(scope="module")
def pipeline():
    return CleaningPipeline()


class TestCleaningPipeline:
    def test_spam_discarded_with_reason(self, corpus, pipeline):
        spam = [m for m in corpus.emails if m.is_spam][:10]
        for message in spam:
            result = pipeline.clean(message.raw_text, channel="email")
            assert result.discarded
            assert result.reason == "spam"

    def test_non_english_sms_discarded(self, corpus, pipeline):
        foreign = [m for m in corpus.sms if m.is_non_english][:10]
        for message in foreign:
            result = pipeline.clean(message.raw_text, channel="sms")
            assert result.discarded
            assert result.reason == "non-english"

    def test_customer_email_cleaned_not_discarded(self, corpus, pipeline):
        linked = [
            m for m in corpus.emails if m.sender_entity_id is not None
        ][:20]
        kept = [
            pipeline.clean(m.raw_text, channel="email") for m in linked
        ]
        assert sum(1 for r in kept if not r.discarded) >= 18

    def test_agent_voice_absent_from_cleaned_email(self, corpus, pipeline):
        linked = next(
            m
            for m in corpus.emails
            if m.sender_entity_id is not None
            and "wrote:" in m.raw_text
        )
        result = pipeline.clean(linked.raw_text, channel="email")
        assert "look into your issue" not in result.text

    def test_sms_lingo_normalised(self, pipeline):
        result = pipeline.clean("pls confrm my bal", channel="sms")
        assert not result.discarded
        assert "please" in result.text
        assert "confirm" in result.text

    def test_unknown_channel_rejected(self, pipeline):
        with pytest.raises(ValueError):
            pipeline.clean("hello", channel="fax")

    def test_empty_message_discarded(self, pipeline):
        result = pipeline.clean("", channel="sms")
        assert result.discarded
        assert result.reason == "empty"

    def test_stats_funnel_accumulates(self, corpus):
        pipeline = CleaningPipeline()
        for message in corpus.sms[:100]:
            pipeline.clean(message.raw_text, channel="sms")
        stats = pipeline.stats
        assert stats.total == 100
        assert stats.kept + stats.spam + stats.non_english + stats.empty == (
            100
        )
        assert stats.kept_fraction > 0.8

    def test_spell_correction_optional(self):
        pipeline = CleaningPipeline(spell_correct=False)
        result = pipeline.clean("my comlpaint is pending", channel="sms")
        assert "comlpaint" in result.text

    def test_clean_many(self, pipeline):
        results = pipeline.clean_many(["hello there", "hi"], channel="sms")
        assert len(results) == 2

    def test_false_discard_rate_bounded(self, corpus):
        """Legitimate noisy SMS should rarely be thrown away."""
        pipeline = CleaningPipeline()
        customer_sms = [
            m for m in corpus.sms if m.sender_entity_id is not None
        ][:300]
        discarded = sum(
            1
            for m in customer_sms
            if pipeline.clean(m.raw_text, channel="sms").discarded
        )
        assert discarded / len(customer_sms) < 0.10
