"""Tests for SMS normalisation and spell correction."""

import pytest

from repro.cleaning.sms import SmsNormalizer, default_lingo_table
from repro.cleaning.spelling import SpellCorrector


class TestSmsNormalizer:
    @pytest.fixture(scope="class")
    def normalizer(self):
        return SmsNormalizer()

    def test_common_lingo_expanded(self, normalizer):
        assert normalizer.normalize("pls confrm rcpt") == (
            "please confirm receipt"
        )

    def test_u_and_ur(self, normalizer):
        assert normalizer.normalize("thx 4 ur help") == (
            "thanks for your help"
        )

    def test_digit_shorthand_context_sensitive(self, normalizer):
        assert normalizer.normalize("go 2 the shop") == "go to the shop"
        assert normalizer.normalize("paid 2 dollars") == "paid 2 dollars"
        assert normalizer.normalize("rs 2") == "rs 2"

    def test_no_is_never_expanded(self, normalizer):
        assert normalizer.normalize("no signal at home") == (
            "no signal at home"
        )

    def test_unknown_tokens_pass_through(self, normalizer):
        assert normalizer.normalize("xyzzy stays") == "xyzzy stays"

    def test_domain_term_extension(self):
        normalizer = SmsNormalizer()
        normalizer.add_domain_term("10000sms", "sms pack")
        assert normalizer.normalize("deactivate 10000sms") == (
            "deactivate sms pack"
        )

    def test_case_insensitive(self, normalizer):
        assert normalizer.normalize("PLS help") == "please help"

    def test_default_table_drops_ambiguous(self):
        assert "no" not in default_lingo_table()

    def test_empty(self, normalizer):
        assert normalizer.normalize("") == ""


class TestSpellCorrector:
    @pytest.fixture(scope="class")
    def corrector(self):
        return SpellCorrector()

    def test_known_words_unchanged(self, corrector):
        assert corrector.correct_word("balance") == "balance"

    def test_single_typo_corrected(self, corrector):
        assert corrector.correct_word("balanse") == "balance"

    def test_transposition_corrected(self, corrector):
        assert corrector.correct_word("comlpaint") == "complaint"

    def test_deletion_corrected(self, corrector):
        assert corrector.correct_word("custmer") == "customer"

    def test_short_tokens_left_alone(self, corrector):
        assert corrector.correct_word("teh") == "teh"  # below min_length

    def test_numbers_left_alone(self, corrector):
        assert corrector.correct_word("2013") == "2013"

    def test_sentence_correction(self, corrector):
        assert corrector.correct("my comlpaint about the balanse") == (
            "my complaint about the balance"
        )

    def test_hopeless_tokens_pass_through(self, corrector):
        assert corrector.correct_word("qqqqqqqqzzzz") == "qqqqqqqqzzzz"

    def test_custom_corpus(self):
        corrector = SpellCorrector(corpus=["gprs roaming activation"])
        assert corrector.correct_word("gprss") == "gprs"

    def test_frequency_breaks_ties(self):
        corrector = SpellCorrector(
            corpus=["rare rare common common common common"]
        )
        # "rarre"/"commn" style typos resolve to the more frequent word
        # when distances tie; here just assert the corrections hold.
        assert corrector.correct_word("commn") == "common"
