"""Tests for the Stage protocol and its helper base classes."""

import pytest

from repro.engine import Document, FunctionStage, MapStage, Stage


class Upper(MapStage):
    """Uppercase the document text into an artifact."""

    name = "upper"

    def process_document(self, document):
        """Write the uppercased text artifact."""
        document.put("upper", document.text.upper())


class TestStageNames:
    def test_explicit_name(self):
        assert Upper().stage_name == "upper"

    def test_default_name_is_class_name(self):
        class Anon(MapStage):
            """Nameless stage."""

            def process_document(self, document):
                """No-op."""

        assert Anon().stage_name == "Anon"

    def test_base_stage_process_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Stage().process([])

    def test_map_stage_document_hook_is_abstract(self):
        with pytest.raises(NotImplementedError):
            MapStage().process([Document(doc_id=1)])


class TestMapStage:
    def test_processes_each_document(self):
        batch = [Document(doc_id=i, text=t)
                 for i, t in enumerate(["a", "b"])]
        out = Upper().process(batch)
        assert out is batch
        assert [d.get("upper") for d in out] == ["A", "B"]

    def test_declared_pure(self):
        assert Upper().pure


class TestFunctionStage:
    def test_wraps_function(self):
        stage = FunctionStage(
            "tag", lambda d: d.put("tag", d.doc_id * 2), pure=True
        )
        batch = [Document(doc_id=3)]
        stage.process(batch)
        assert batch[0].get("tag") == 6
        assert stage.stage_name == "tag"
        assert stage.pure

    def test_defaults_to_impure(self):
        assert not FunctionStage("x", lambda d: None).pure
