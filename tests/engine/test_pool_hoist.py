"""The runner's shared thread pool: one executor per run, reusable.

Guards the pool-hoisting refactor: a parallel run constructs exactly
one :class:`ThreadPoolExecutor` no matter how many parallel stages it
executes (previously one per stage), an injected external pool is
reused across runs and never shut down by the runner, and parallel
output stays bit-identical to serial in every configuration.
"""

from concurrent.futures import ThreadPoolExecutor

from repro.engine import Document, MapStage, PipelineRunner
import repro.engine.runner as runner_module


class Square(MapStage):
    """value <- doc_id ** 2 (pure)."""

    name = "square"

    def process_document(self, document):
        """Record the squared id."""
        document.put("value", document.doc_id ** 2)


class Offset(MapStage):
    """value <- value + 7 (pure)."""

    name = "offset"

    def process_document(self, document):
        """Shift the running value."""
        document.put("value", document.get("value") + 7)


class Offset2(Offset):
    """Second offset stage (stage names must be unique per graph)."""

    name = "offset-2"


def _docs(n):
    return [Document(doc_id=i) for i in range(n)]


def _values(result):
    return [d.get("value") for d in result.documents]


class CountingExecutor(ThreadPoolExecutor):
    """ThreadPoolExecutor that counts constructions and shutdowns."""

    created = 0
    closed = 0

    def __init__(self, *args, **kwargs):
        type(self).created += 1
        super().__init__(*args, **kwargs)

    def shutdown(self, *args, **kwargs):
        type(self).closed += 1
        super().shutdown(*args, **kwargs)


def _reset_counts():
    CountingExecutor.created = 0
    CountingExecutor.closed = 0


class TestOneExecutorPerRun:
    def test_single_pool_spans_all_stages(self, monkeypatch):
        _reset_counts()
        monkeypatch.setattr(
            runner_module, "ThreadPoolExecutor", CountingExecutor
        )
        runner = PipelineRunner(
            [Square(), Offset(), Offset2()], batch_size=4, workers=3
        )
        result = runner.run(_docs(32))
        # Three parallel stages, one executor — and it was torn down.
        assert CountingExecutor.created == 1
        assert CountingExecutor.closed == 1
        assert all(s.parallel for s in result.report.stages)

    def test_each_run_gets_a_fresh_pool(self, monkeypatch):
        _reset_counts()
        monkeypatch.setattr(
            runner_module, "ThreadPoolExecutor", CountingExecutor
        )
        runner = PipelineRunner([Square()], batch_size=4, workers=2)
        runner.run(_docs(16))
        runner.run(_docs(16))
        assert CountingExecutor.created == 2
        assert CountingExecutor.closed == 2

    def test_serial_run_builds_no_pool(self, monkeypatch):
        _reset_counts()
        monkeypatch.setattr(
            runner_module, "ThreadPoolExecutor", CountingExecutor
        )
        runner = PipelineRunner([Square(), Offset()], batch_size=4)
        result = runner.run(_docs(16))
        assert CountingExecutor.created == 0
        assert not any(s.parallel for s in result.report.stages)


class TestExternalPool:
    def test_injected_pool_is_used_and_kept_open(self, monkeypatch):
        _reset_counts()
        monkeypatch.setattr(
            runner_module, "ThreadPoolExecutor", CountingExecutor
        )
        with ThreadPoolExecutor(max_workers=3) as pool:
            runner = PipelineRunner(
                [Square(), Offset()], batch_size=4, workers=3, pool=pool
            )
            first = runner.run(_docs(24))
            second = runner.run(_docs(24))
            # The runner built no pool of its own and left the
            # injected one usable between runs.
            assert CountingExecutor.created == 0
            assert all(s.parallel for s in first.report.stages)
            assert pool.submit(lambda: 41 + 1).result() == 42
        assert _values(first) == _values(second)


class TestBitIdentity:
    def test_parallel_matches_serial(self):
        stages = [Square(), Offset()]
        serial = PipelineRunner(
            [Square(), Offset()], batch_size=4
        ).run(_docs(40))
        hoisted = PipelineRunner(
            stages, batch_size=4, workers=4
        ).run(_docs(40))
        with ThreadPoolExecutor(max_workers=4) as pool:
            injected = PipelineRunner(
                [Square(), Offset()], batch_size=4, workers=4, pool=pool
            ).run(_docs(40))
        assert _values(hoisted) == _values(serial)
        assert _values(injected) == _values(serial)
        assert [d.doc_id for d in hoisted.documents] == list(range(40))
