"""The runner's warm execution backend: resolved once, reused per run.

Guards the backend refactor: a parallel runner constructs exactly one
executor no matter how many parallel stages or runs it executes (the
backend is resolved at construction and warm-reused), an injected
external pool is wrapped and never shut down by the runner, executor
knobs are mutually exclusive (the validation drift between the runner
and the query engine is fixed — both raise now), and parallel output
stays bit-identical to serial in every configuration.
"""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.engine import Document, MapStage, PipelineRunner
from repro.exec import ThreadBackend
import repro.exec.backend as backend_module


class Square(MapStage):
    """value <- doc_id ** 2 (pure)."""

    name = "square"

    def process_document(self, document):
        """Record the squared id."""
        document.put("value", document.doc_id ** 2)


class Offset(MapStage):
    """value <- value + 7 (pure)."""

    name = "offset"

    def process_document(self, document):
        """Shift the running value."""
        document.put("value", document.get("value") + 7)


class Offset2(Offset):
    """Second offset stage (stage names must be unique per graph)."""

    name = "offset-2"


def _docs(n):
    return [Document(doc_id=i) for i in range(n)]


def _values(result):
    return [d.get("value") for d in result.documents]


class CountingExecutor(ThreadPoolExecutor):
    """ThreadPoolExecutor that counts constructions and shutdowns."""

    created = 0
    closed = 0

    def __init__(self, *args, **kwargs):
        type(self).created += 1
        super().__init__(*args, **kwargs)

    def shutdown(self, *args, **kwargs):
        type(self).closed += 1
        super().shutdown(*args, **kwargs)


@pytest.fixture
def counting(monkeypatch):
    """Patch the thread backend's executor class and reset counters."""
    CountingExecutor.created = 0
    CountingExecutor.closed = 0
    monkeypatch.setattr(
        backend_module, "ThreadPoolExecutor", CountingExecutor
    )
    return CountingExecutor


class TestOneExecutorPerRunner:
    def test_single_pool_spans_all_stages(self, counting):
        with PipelineRunner(
            [Square(), Offset(), Offset2()], batch_size=4, workers=3
        ) as runner:
            result = runner.run(_docs(32))
            # Three parallel stages, one executor.
            assert counting.created == 1
            assert counting.closed == 0
            assert all(s.parallel for s in result.report.stages)
        # Context exit released the owned backend.
        assert counting.closed == 1

    def test_runs_share_the_warm_pool(self, counting):
        with PipelineRunner(
            [Square()], batch_size=4, workers=2
        ) as runner:
            runner.run(_docs(16))
            runner.run(_docs(16))
            # Warm-reuse: the second run did not respawn workers.
            assert counting.created == 1
        assert counting.closed == 1

    def test_serial_run_builds_no_pool(self, counting):
        runner = PipelineRunner([Square(), Offset()], batch_size=4)
        result = runner.run(_docs(16))
        runner.close()
        assert counting.created == 0
        assert not any(s.parallel for s in result.report.stages)

    def test_workers_one_builds_no_pool(self, counting):
        with PipelineRunner(
            [Square()], batch_size=4, workers=1
        ) as runner:
            result = runner.run(_docs(16))
        assert counting.created == 0
        assert not any(s.parallel for s in result.report.stages)


class TestExternalPool:
    def test_injected_pool_is_used_and_kept_open(self, counting):
        with ThreadPoolExecutor(max_workers=3) as pool:
            runner = PipelineRunner(
                [Square(), Offset()], batch_size=4, pool=pool
            )
            first = runner.run(_docs(24))
            second = runner.run(_docs(24))
            runner.close()
            # The runner built no pool of its own and left the
            # injected one usable between runs — and after close().
            assert counting.created == 0
            assert all(s.parallel for s in first.report.stages)
            assert pool.submit(lambda: 41 + 1).result() == 42
        assert _values(first) == _values(second)


class TestExclusiveExecutorKnobs:
    """One rule for every constructor: two executors never compete.

    Historically the runner silently preferred an injected ``pool``
    over ``workers`` while :class:`~repro.serve.engine.QueryEngine`
    raised — the drift is fixed by sharing one resolver, so both now
    raise the same error.
    """

    def test_pool_with_workers_raises(self):
        with ThreadPoolExecutor(max_workers=2) as pool:
            with pytest.raises(ValueError, match="either pool or workers"):
                PipelineRunner([Square()], workers=3, pool=pool)

    def test_pool_with_backend_raises(self):
        with ThreadPoolExecutor(max_workers=2) as pool:
            with pytest.raises(ValueError, match="either pool or backend"):
                PipelineRunner([Square()], pool=pool, backend="thread")

    def test_backend_instance_with_workers_raises(self):
        backend = ThreadBackend(2)
        try:
            with pytest.raises(ValueError, match="backend instance"):
                PipelineRunner([Square()], workers=3, backend=backend)
        finally:
            backend.close()

    def test_query_engine_raises_the_same_way(self):
        from repro.serve.engine import QueryEngine
        from repro.stream.epoch import EpochStore

        with ThreadPoolExecutor(max_workers=2) as pool:
            with pytest.raises(ValueError, match="either pool or workers"):
                QueryEngine(EpochStore(), pool=pool, workers=3)


class TestBitIdentity:
    def test_parallel_matches_serial(self):
        stages = [Square(), Offset()]
        serial = PipelineRunner(
            [Square(), Offset()], batch_size=4
        ).run(_docs(40))
        with PipelineRunner(
            stages, batch_size=4, workers=4
        ) as hoisted_runner:
            hoisted = hoisted_runner.run(_docs(40))
        with ThreadPoolExecutor(max_workers=4) as pool:
            injected = PipelineRunner(
                [Square(), Offset()], batch_size=4, pool=pool
            ).run(_docs(40))
        assert _values(hoisted) == _values(serial)
        assert _values(injected) == _values(serial)
        assert [d.doc_id for d in hoisted.documents] == list(range(40))
