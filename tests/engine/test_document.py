"""Tests for the typed Document envelope."""

import pytest

from repro.engine import Document


class TestArtifacts:
    def test_put_get_roundtrip(self):
        doc = Document(doc_id=1)
        doc.put("cleaned_text", "hello")
        assert doc.get("cleaned_text") == "hello"

    def test_get_default_when_absent(self):
        doc = Document(doc_id=1)
        assert doc.get("missing") is None
        assert doc.get("missing", 0) == 0

    def test_put_chains(self):
        doc = Document(doc_id=1).put("a", 1).put("b", 2)
        assert doc.artifacts == {"a": 1, "b": 2}

    def test_require_present(self):
        doc = Document(doc_id=1, artifacts={"x": 5})
        assert doc.require("x") == 5

    def test_require_missing_names_provenance(self):
        doc = Document(doc_id="call-3", provenance=("clean", "link"))
        with pytest.raises(KeyError) as excinfo:
            doc.require("annotated")
        message = str(excinfo.value)
        assert "call-3" in message
        assert "clean" in message and "link" in message


class TestDiscard:
    def test_fresh_document_is_live(self):
        doc = Document(doc_id=1)
        assert not doc.discarded
        assert doc.discard_reason == ""

    def test_discard_records_stage_and_reason(self):
        doc = Document(doc_id=1)
        doc.discard("clean", "spam")
        assert doc.discarded
        assert doc.discard_stage == "clean"
        assert doc.discard_reason == "spam"

    def test_discard_keeps_artifacts(self):
        doc = Document(doc_id=1, artifacts={"cleaned_text": "x"})
        doc.discard("clean", "non-english")
        assert doc.get("cleaned_text") == "x"


class TestEnvelope:
    def test_channel_and_text_defaults(self):
        doc = Document(doc_id=9)
        assert doc.channel == ""
        assert doc.text == ""
        assert doc.provenance == ()

    def test_documents_do_not_share_artifacts(self):
        first = Document(doc_id=1)
        second = Document(doc_id=2)
        first.put("k", "v")
        assert second.artifacts == {}
