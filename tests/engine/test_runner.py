"""Tests for the PipelineRunner: batching, funnel accounting,
instrumentation, and the parallel-determinism guarantee."""

import pytest

from repro.engine import (
    Document,
    FunctionStage,
    MapStage,
    PipelineRunner,
    Stage,
)


class AddOne(MapStage):
    """value <- value + 1 (pure, per-document)."""

    name = "add-one"

    def process_document(self, document):
        """Increment the running value artifact."""
        document.put("value", document.get("value", document.doc_id) + 1)


class DropOdd(MapStage):
    """Discard documents with odd ids."""

    name = "drop-odd"

    def process_document(self, document):
        """Discard odd doc ids with a recorded reason."""
        if document.doc_id % 2:
            document.discard(self.stage_name, "odd")


class BatchSpy(Stage):
    """Records the batch sizes it was handed."""

    name = "spy"
    pure = False

    def __init__(self):
        self.sizes = []

    def process(self, batch):
        """Record and pass through."""
        self.sizes.append(len(batch))
        return batch


def _docs(n):
    return [Document(doc_id=i) for i in range(n)]


class TestRunBasics:
    def test_documents_flow_in_order(self):
        result = PipelineRunner([AddOne()]).run(_docs(5))
        assert [d.doc_id for d in result.documents] == list(range(5))
        assert result.artifact_column("value") == [1, 2, 3, 4, 5]

    def test_empty_corpus(self):
        result = PipelineRunner([AddOne()]).run([])
        assert result.documents == []
        assert result.report.total_in == 0
        assert result.report.total_out == 0

    def test_provenance_appended_per_stage(self):
        result = PipelineRunner([AddOne(), DropOdd()]).run(_docs(2))
        assert result.documents[0].provenance == ("add-one", "drop-odd")
        assert result.discarded[0].provenance == ("add-one", "drop-odd")

    def test_stage_names_must_be_unique(self):
        with pytest.raises(ValueError):
            PipelineRunner([AddOne(), AddOne()])

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            PipelineRunner([AddOne()], batch_size=0)
        with pytest.raises(ValueError):
            PipelineRunner([AddOne()], workers=-1)


class TestBatching:
    def test_batches_bounded_by_batch_size(self):
        spy = BatchSpy()
        PipelineRunner([spy], batch_size=4).run(_docs(10))
        assert spy.sizes == [4, 4, 2]

    def test_discards_shrink_downstream_batches(self):
        spy = BatchSpy()
        PipelineRunner([DropOdd(), spy], batch_size=100).run(_docs(10))
        assert spy.sizes == [5]

    def test_stage_must_return_full_batch(self):
        class Truncates(Stage):
            """Illegally drops documents instead of flagging them."""

            name = "bad"

            def process(self, batch):
                """Return a shorter batch."""
                return batch[:-1]

        with pytest.raises(ValueError, match="same length"):
            PipelineRunner([Truncates()]).run(_docs(3))


class TestFunnelAccounting:
    def test_per_stage_counters(self):
        result = PipelineRunner(
            [AddOne(), DropOdd(), FunctionStage("sink", lambda d: None)],
            batch_size=3,
        ).run(_docs(10))
        report = result.report
        assert report.total_in == 10
        assert report.total_out == 5
        add = report.stage("add-one")
        assert (add.docs_in, add.docs_out, add.discarded) == (10, 10, 0)
        drop = report.stage("drop-odd")
        assert (drop.docs_in, drop.docs_out, drop.discarded) == (10, 5, 5)
        sink = report.stage("sink")
        assert (sink.docs_in, sink.docs_out) == (5, 5)

    def test_discarded_documents_carry_stage_and_reason(self):
        result = PipelineRunner([DropOdd()]).run(_docs(4))
        assert [d.doc_id for d in result.discarded] == [1, 3]
        assert all(d.discard_stage == "drop-odd" for d in result.discarded)
        assert all(d.discard_reason == "odd" for d in result.discarded)

    def test_unknown_stage_lookup_raises(self):
        report = PipelineRunner([AddOne()]).run(_docs(1)).report
        with pytest.raises(KeyError):
            report.stage("ghost")


class TestInstrumentation:
    def test_injected_clock_drives_wall_time(self):
        ticks = iter(range(100))
        runner = PipelineRunner(
            [AddOne()], clock=lambda: float(next(ticks))
        )
        report = runner.run(_docs(3)).report
        # One tick before / after the stage and around the run.
        assert report.stage("add-one").wall_time == pytest.approx(1.0)
        assert report.wall_time == pytest.approx(3.0)

    def test_report_serialises_to_plain_dicts(self):
        import json

        report = PipelineRunner([DropOdd()], batch_size=2).run(
            _docs(5)
        ).report
        payload = report.to_json_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["total_in"] == 5
        assert payload["stages"][0]["stage"] == "drop-odd"
        assert payload["stages"][0]["discarded"] == 2
        assert payload["stages"][0]["batches"] == 3

    def test_render_text_mentions_every_stage(self):
        report = PipelineRunner([AddOne(), DropOdd()]).run(
            _docs(4)
        ).report
        text = report.render_text()
        assert "add-one" in text
        assert "drop-odd" in text
        assert "total" in text


class TestParallelDeterminism:
    def _run(self, workers, n=37, batch_size=4):
        stages = [
            AddOne(),
            FunctionStage(
                "square",
                lambda d: d.put("square", d.get("value") ** 2),
                pure=True,
            ),
            DropOdd(),
        ]
        return PipelineRunner(
            stages, batch_size=batch_size, workers=workers
        ).run(_docs(n))

    def test_parallel_output_bit_identical_to_serial(self):
        serial = self._run(workers=0)
        parallel = self._run(workers=4)
        assert serial.documents == parallel.documents
        assert serial.discarded == parallel.discarded

    def test_parallel_marks_pure_stages_only(self):
        impure_spy = BatchSpy()
        stages = [AddOne(), impure_spy]
        report = PipelineRunner(
            stages, batch_size=2, workers=4
        ).run(_docs(8)).report
        assert report.stage("add-one").parallel
        assert not report.stage("spy").parallel

    def test_single_batch_stays_serial(self):
        report = PipelineRunner(
            [AddOne()], batch_size=100, workers=4
        ).run(_docs(8)).report
        assert not report.stage("add-one").parallel
