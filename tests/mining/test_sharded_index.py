"""Contract parity of the sharded concept index vs the single index."""

import pytest

from repro.mining.index import ConceptIndex, concept_key, field_key
from repro.mining.sharded import (
    ShardedConceptIndex,
    make_concept_index,
    shard_count_of,
    shard_id,
)

ROWS = [
    (0, [("vehicle", "suv"), ("place", "seattle")], "reservation", 0),
    (1, [("vehicle", "suv"), ("place", "seattle")], "reservation", 1),
    (2, [("vehicle", "luxury"), ("place", "new york")], "unbooked", 2),
    (3, [("vehicle", "suv"), ("place", "boston")], "unbooked", 0),
    (4, [("vehicle", "compact"), ("place", "seattle")], "reservation", 1),
    (5, [("vehicle", "luxury"), ("place", "new york")], "reservation", 2),
    (6, [("vehicle", "compact"), ("place", "boston")], "unbooked", 0),
    (7, [("vehicle", "compact"), ("place", "new york")], "unbooked", 1),
]


def fill(index):
    """Load the shared fixture rows into any contract implementation."""
    for doc_id, pairs, outcome, ts in ROWS:
        keys = [concept_key(cat, canon) for cat, canon in pairs]
        keys.append(field_key("call_type", outcome))
        index.add_keys(
            doc_id, keys, timestamp=ts, text=f"call {doc_id}"
        )
    return index


@pytest.fixture
def single():
    """The reference single index over the fixture rows."""
    return fill(ConceptIndex(keep_documents=True))


@pytest.fixture(params=[1, 2, 4, 7])
def sharded(request):
    """Sharded layouts including one that does not divide the corpus."""
    return fill(
        ShardedConceptIndex(request.param, keep_documents=True)
    )


class TestFactory:
    def test_zero_builds_single(self):
        index = make_concept_index(shards=0)
        assert isinstance(index, ConceptIndex)
        assert shard_count_of(index) == 0

    def test_positive_builds_sharded(self):
        index = make_concept_index(shards=3)
        assert isinstance(index, ShardedConceptIndex)
        assert shard_count_of(index) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="shards must be >= 0"):
            make_concept_index(shards=-1)
        with pytest.raises(ValueError, match="n_shards must be >= 1"):
            ShardedConceptIndex(0)


class TestRouting:
    def test_deterministic_and_stable(self):
        # CRC-32 routing never changes between runs or processes —
        # pinned values guard against anyone swapping in hash().
        assert shard_id(0, 4) == 1
        assert shard_id(1, 4) == 3
        assert shard_id("call-17", 4) == shard_id("call-17", 4)
        for doc_id in range(50):
            assert 0 <= shard_id(doc_id, 7) < 7

    def test_documents_land_on_their_shard(self, sharded):
        for doc_id, _, _, _ in ROWS:
            number = sharded.shard_of(doc_id)
            assert doc_id in sharded.shards[number]
            for other, shard in enumerate(sharded.shards):
                if other != number:
                    assert doc_id not in shard

    def test_shard_sizes_partition_the_corpus(self, sharded):
        sizes = sharded.shard_sizes()
        assert len(sizes) == sharded.n_shards
        assert sum(sizes) == len(ROWS)


class TestContractParity:
    def test_len_contains_document_ids(self, single, sharded):
        assert len(sharded) == len(single)
        assert sharded.document_ids == single.document_ids
        assert 0 in sharded
        assert 99 not in sharded

    def test_counts_and_postings(self, single, sharded):
        for key in [
            concept_key("vehicle", "suv"),
            concept_key("place", "seattle"),
            field_key("call_type", "unbooked"),
            concept_key("vehicle", "missing"),
        ]:
            assert sharded.count(key) == single.count(key)
            assert sharded.documents_with(key) == (
                single.documents_with(key)
            )
            assert set(sharded.postings_view(key)) == set(
                single.postings_view(key)
            )

    def test_count_pair(self, single, sharded):
        pair = (
            concept_key("vehicle", "suv"),
            field_key("call_type", "reservation"),
        )
        assert sharded.count_pair(*pair) == single.count_pair(*pair)
        assert sharded.count_pair(*pair) == 2

    def test_per_document_reads(self, single, sharded):
        for doc_id, _, _, _ in ROWS:
            assert sharded.keys_of(doc_id) == single.keys_of(doc_id)
            assert sharded.timestamp_of(doc_id) == (
                single.timestamp_of(doc_id)
            )
            assert sharded.text_of(doc_id) == single.text_of(doc_id)

    def test_dimension_catalogues(self, single, sharded):
        for dimension in [
            ("concept", "vehicle"),
            ("concept", "place"),
            ("field", "call_type"),
            ("field", "missing"),
        ]:
            assert sharded.values_of_dimension(dimension) == (
                single.values_of_dimension(dimension)
            )
            assert sharded.keys_of_dimension(dimension) == (
                single.keys_of_dimension(dimension)
            )

    def test_missing_document_errors_match(self, sharded):
        with pytest.raises(KeyError):
            sharded.keys_of(99)
        with pytest.raises(KeyError):
            sharded.timestamp_of(99)
        with pytest.raises(KeyError, match="not indexed"):
            sharded.remove(99)
        with pytest.raises(KeyError, match="not indexed"):
            sharded.text_of(99)

    def test_text_requires_keep_documents(self):
        bare = ShardedConceptIndex(2)
        bare.add_keys(1, [concept_key("a", "b")])
        with pytest.raises(RuntimeError, match="keep_documents"):
            bare.text_of(1)


class TestDuplicates:
    def test_raise_is_default(self, sharded):
        with pytest.raises(ValueError, match="already indexed"):
            sharded.add_keys(0, [concept_key("vehicle", "suv")])

    def test_bad_mode_rejected(self, sharded):
        with pytest.raises(ValueError, match="on_duplicate"):
            sharded.add_keys(
                0, [concept_key("a", "b")], on_duplicate="upsert"
            )

    def test_skip_keeps_original(self, single, sharded):
        for index in (single, sharded):
            index.add_keys(
                0, [concept_key("vehicle", "van")], on_duplicate="skip"
            )
        assert sharded.keys_of(0) == single.keys_of(0)
        assert concept_key("vehicle", "van") not in sharded.keys_of(0)

    def test_replace_moves_to_end(self, single, sharded):
        for index in (single, sharded):
            index.add_keys(
                0,
                [concept_key("vehicle", "van")],
                timestamp=9,
                on_duplicate="replace",
            )
        assert sharded.document_ids == single.document_ids
        assert sharded.document_ids[-1] == 0
        assert sharded.keys_of(0) == {concept_key("vehicle", "van")}
        assert sharded.timestamp_of(0) == 9

    def test_remove_releases_postings(self, single, sharded):
        for index in (single, sharded):
            index.remove(2).remove(5)
        key = concept_key("vehicle", "luxury")
        assert sharded.count(key) == 0
        assert sharded.values_of_dimension(("concept", "vehicle")) == (
            single.values_of_dimension(("concept", "vehicle"))
        )
        assert len(sharded) == len(single)


class TestPostingsAliasing:
    def test_documents_with_still_copies(self, single):
        # Regression guard for the non-copying accessor refactor: the
        # public read must stay a defensive copy.
        key = concept_key("vehicle", "suv")
        copied = single.documents_with(key)
        copied.add(999)
        assert 999 not in single.documents_with(key)
        assert single.count(key) == 3

    def test_postings_view_does_not_copy(self, single):
        key = concept_key("vehicle", "suv")
        assert single.postings_view(key) is single.postings_view(key)
        assert single.postings_view(key) is single._postings[key]

    def test_postings_view_missing_key_is_empty(self, single):
        assert single.postings_view(("concept", "x", "y")) == frozenset()

    def test_sharded_view_is_fresh_union(self, sharded):
        # Shard unions materialise a fresh set, so mutating the result
        # can never corrupt shard state.
        key = concept_key("vehicle", "suv")
        view = sharded.postings_view(key)
        view.add(999)
        assert 999 not in sharded.documents_with(key)
