"""Copy-on-write snapshots: frozen views survive every live mutation.

Satellite of the serving subsystem: epoch snapshots share postings
sets with the live index (publication is O(distinct keys) pointer
copies, no deep copy), so the hazard to pin down is a *shared-set
mutation* — a replace-path upsert or a remove on the live index that
writes into a set a published snapshot still references.  These tests
drive exactly those paths and assert the snapshot never moves.
"""

import pytest

from repro.mining.index import ConceptIndex, concept_key, field_key
from repro.mining.sharded import ShardedConceptIndex


def _fill(index):
    """Three documents over two dimensions, with timestamps."""
    index.add_keys(
        "a",
        [field_key("city", "boston"), concept_key("issue", "billing")],
        timestamp=0,
    )
    index.add_keys(
        "b",
        [field_key("city", "boston"), concept_key("issue", "outage")],
        timestamp=1,
    )
    index.add_keys(
        "c",
        [field_key("city", "denver"), concept_key("issue", "billing")],
        timestamp=1,
    )
    return index


@pytest.fixture(params=[0, 3])
def live(request):
    """A filled live index, single (0) and sharded (3) layouts."""
    if request.param:
        return _fill(ShardedConceptIndex(request.param))
    return _fill(ConceptIndex())


class TestFrozenView:
    """Snapshots expose reads and refuse writes."""

    def test_snapshot_reads_equal_live_at_capture(self, live):
        """A fresh snapshot agrees with the live index everywhere."""
        view = live.snapshot()
        assert len(view) == len(live)
        assert view.concept_keys() == live.concept_keys()
        assert view.stats() == live.stats()
        for key in live.concept_keys():
            assert view.documents_with(key) == live.documents_with(key)
        for doc_id in live.document_ids:
            assert view.keys_of(doc_id) == live.keys_of(doc_id)
            assert view.timestamp_of(doc_id) == live.timestamp_of(doc_id)

    def test_snapshot_refuses_writes(self, live):
        """add_keys and remove on a snapshot raise RuntimeError."""
        view = live.snapshot()
        with pytest.raises(RuntimeError):
            view.add_keys("z", [field_key("city", "boston")])
        with pytest.raises(RuntimeError):
            view.remove("a")
        assert view.is_snapshot
        assert not live.is_snapshot

    def test_snapshot_of_snapshot_is_itself(self, live):
        """Snapshotting a frozen view is the identity."""
        view = live.snapshot()
        assert view.snapshot() is view


class TestCopyOnWriteIsolation:
    """Live mutations never reach a published snapshot."""

    def test_new_document_invisible_to_snapshot(self, live):
        """An insert after capture touches only the live index."""
        view = live.snapshot()
        live.add_keys("d", [field_key("city", "boston")], timestamp=2)
        assert "d" in live and "d" not in view
        assert live.count(field_key("city", "boston")) == 3
        assert view.count(field_key("city", "boston")) == 2

    def test_replace_upsert_does_not_alter_snapshot(self, live):
        """The replace path (remove + re-add of shared keys) is the
        sharing hazard this contract exists for."""
        view = live.snapshot()
        before = {
            key: view.documents_with(key)
            for key in view.concept_keys()
        }
        live.add(
            "a",
            fields={"city": "denver"},
            timestamp=5,
            on_duplicate="replace",
        )
        assert live.documents_with(field_key("city", "denver")) == (
            {"a", "c"}
        )
        for key, docs in before.items():
            assert view.documents_with(key) == docs
        assert view.keys_of("a") == {
            field_key("city", "boston"), concept_key("issue", "billing"),
        }
        assert view.timestamp_of("a") == 0

    def test_remove_does_not_alter_snapshot(self, live):
        """Un-indexing a document leaves the captured postings whole."""
        view = live.snapshot()
        live.remove("b")
        assert "b" not in live
        assert "b" in view
        assert view.documents_with(field_key("city", "boston")) == (
            {"a", "b"}
        )

    def test_snapshot_postings_views_are_stable_objects(self, live):
        """Even the non-copying postings_view of a snapshot is frozen:
        a live write replaces the live set instead of mutating the
        shared one."""
        view = live.snapshot()
        key = field_key("city", "boston")
        shared = view.postings_view(key)
        live.add_keys("e", [key], timestamp=9)
        assert shared == {"a", "b"}
        assert view.postings_view(key) == {"a", "b"}

    def test_successive_snapshots_are_independent(self, live):
        """Each publication freezes its own point in time."""
        first = live.snapshot()
        live.add_keys("d", [field_key("city", "austin")], timestamp=3)
        second = live.snapshot()
        live.remove("a")
        assert len(first) == 3
        assert len(second) == 4
        assert len(live) == 3
        assert "a" in first and "a" in second and "a" not in live


class TestStats:
    """The cheap structural counters (health endpoint satellite)."""

    def test_single_index_stats(self):
        """documents / concepts / shards for the single layout."""
        index = _fill(ConceptIndex())
        assert index.stats() == {
            "documents": 3, "concepts": 4, "shards": 0,
        }

    def test_sharded_stats_add_per_shard_sizes(self):
        """Sharded stats agree with the single layout and add the
        per-shard breakdowns."""
        single = _fill(ConceptIndex())
        sharded = _fill(ShardedConceptIndex(3))
        stats = sharded.stats()
        assert stats["documents"] == single.stats()["documents"]
        assert stats["concepts"] == single.stats()["concepts"]
        assert stats["shards"] == 3
        assert sum(stats["shard_documents"]) == stats["documents"]
        assert len(stats["shard_concepts"]) == 3
        # A key spanning shards counts once in the distinct total.
        assert sum(stats["shard_concepts"]) >= stats["concepts"]

    def test_concept_keys_sorted(self):
        """concept_keys is the sorted distinct key list."""
        index = _fill(ConceptIndex())
        keys = index.concept_keys()
        assert keys == sorted(keys)
        assert field_key("city", "boston") in keys
        sharded = _fill(ShardedConceptIndex(3))
        assert sharded.concept_keys() == keys
