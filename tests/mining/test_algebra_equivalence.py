"""Sharded analytics are ``==``-identical to the single-index runs.

The acceptance bar of the partial/merge/finalize refactor: every
mining analytic, on both synthetic corpora, for shard counts 1, 2, 4
and 7 (7 deliberately does not divide either corpus evenly), produces
*bit-identical* results to the unsharded index — ``==`` on the result
objects, never approximate comparison.  The same holds when the shard
partials run on a thread pool instead of serially.
"""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.annotation.dictionary import DictionaryEntry, DomainDictionary
from repro.annotation.domains import CHURN_DRIVER_SURFACES
from repro.annotation.matcher import AnnotationEngine
from repro.core import BIVoCConfig
from repro.core.pipeline import BIVoCSystem
from repro.mining.assoc2d import associate
from repro.mining.index import ConceptIndex
from repro.mining.olap import concept_cube
from repro.mining.relfreq import relative_frequency
from repro.mining.sharded import ShardedConceptIndex
from repro.mining.trends import emerging_concepts, trend_series
from repro.synth.carrental import CarRentalConfig, generate_car_rental
from repro.synth.telecom import TelecomConfig, generate_telecom

SHARD_COUNTS = [1, 2, 4, 7]


def reshard(single, n_shards):
    """Replicate a single index's contents into a sharded layout."""
    sharded = ShardedConceptIndex(
        n_shards, keep_documents=single.keeps_documents
    )
    for doc_id in single.document_ids:
        sharded.add_keys(
            doc_id,
            single.keys_of(doc_id),
            timestamp=single.timestamp_of(doc_id),
            text=(
                single.text_of(doc_id)
                if single.keeps_documents else None
            ),
        )
    return sharded


@pytest.fixture(scope="module")
def car_index():
    """Concept index from the full pipeline on a small car corpus."""
    corpus = generate_car_rental(
        CarRentalConfig(
            n_agents=8,
            n_days=3,
            calls_per_agent_per_day=5,
            n_customers=80,
            seed=9,
        )
    )
    system = BIVoCSystem(
        BIVoCConfig(use_asr=False, link_mode="content")
    )
    return system.process_call_center(corpus).index


@pytest.fixture(scope="module")
def telecom_index():
    """Churn-driver index over a small telecom message corpus."""
    corpus = generate_telecom(
        TelecomConfig(scale=0.01, n_customers=500, seed=7)
    )
    dictionary = DomainDictionary()
    for driver, surfaces in CHURN_DRIVER_SURFACES.items():
        for surface in surfaces:
            dictionary.add(
                DictionaryEntry(surface, driver, "churn driver")
            )
    engine = AnnotationEngine(dictionary=dictionary)
    index = ConceptIndex()
    for message in corpus.messages:
        index.add(
            message.message_id,
            annotated=engine.annotate(message.clean_text),
            fields={"channel": message.channel},
            timestamp=message.month,
        )
    return index


@pytest.fixture(
    scope="module", params=["carrental", "telecom"]
)
def corpus_pair(request, car_index, telecom_index):
    """(single index, analytics spec) per corpus."""
    if request.param == "carrental":
        return car_index, {
            "focus": [("field", "call_type", "unbooked")],
            "candidates": ("concept", "place"),
            "rows": ("concept", "place"),
            "cols": ("concept", "vehicle type"),
            "trend_dim": ("concept", "vehicle type"),
            "cube_dims": [
                ("concept", "place"), ("field", "call_type"),
            ],
        }
    return telecom_index, {
        "focus": [("field", "channel", "email")],
        "candidates": ("concept", "churn driver"),
        "rows": ("concept", "churn driver"),
        "cols": ("field", "channel"),
        "trend_dim": ("concept", "churn driver"),
        "cube_dims": [
            ("concept", "churn driver"), ("field", "channel"),
        ],
    }


@pytest.fixture(params=SHARD_COUNTS)
def layout(request, corpus_pair):
    """(single, sharded replica, spec) for every shard count."""
    single, spec = corpus_pair
    return single, reshard(single, request.param), spec


def assert_tables_identical(expected, actual):
    """Two association tables carry identical cells and shares."""
    assert actual.row_values == expected.row_values
    assert actual.col_values == expected.col_values
    assert actual.cells() == expected.cells()
    assert actual.row_share_matrix() == expected.row_share_matrix()


class TestShardedEquivalence:
    def test_index_reads_identical(self, layout):
        single, sharded, _ = layout
        assert len(sharded) == len(single)
        assert sharded.document_ids == single.document_ids

    def test_relative_frequency(self, layout):
        single, sharded, spec = layout
        expected = relative_frequency(
            single, spec["focus"], spec["candidates"]
        )
        assert relative_frequency(
            sharded, spec["focus"], spec["candidates"]
        ) == expected

    def test_associate(self, layout):
        single, sharded, spec = layout
        expected = associate(single, spec["rows"], spec["cols"])
        actual = associate(sharded, spec["rows"], spec["cols"])
        assert_tables_identical(expected, actual)

    def test_trend_series(self, layout):
        single, sharded, spec = layout
        for key in single.keys_of_dimension(spec["trend_dim"]):
            assert trend_series(sharded, key) == (
                trend_series(single, key)
            )

    def test_emerging_concepts(self, layout):
        single, sharded, spec = layout
        for min_total in (0, 1, 3):
            assert emerging_concepts(
                sharded, spec["trend_dim"], min_total=min_total
            ) == emerging_concepts(
                single, spec["trend_dim"], min_total=min_total
            )

    def test_concept_cube(self, layout):
        single, sharded, spec = layout
        expected = concept_cube(single, spec["cube_dims"])
        actual = concept_cube(sharded, spec["cube_dims"])
        assert actual.total == expected.total
        assert actual.cells(include_empty_coordinates=True) == (
            expected.cells(include_empty_coordinates=True)
        )
        first = spec["cube_dims"][0]
        assert actual.margin(first) == expected.margin(first)


class TestPooledEquivalence:
    def test_pool_matches_serial(self, corpus_pair):
        # The thread-pool fan-out preserves shard order in the merge,
        # so pooled results are bit-identical to serial ones.
        single, spec = corpus_pair
        sharded = reshard(single, 4)
        serial = {
            "relfreq": relative_frequency(
                sharded, spec["focus"], spec["candidates"]
            ),
            "emerging": emerging_concepts(sharded, spec["trend_dim"]),
        }
        serial_table = associate(sharded, spec["rows"], spec["cols"])
        with ThreadPoolExecutor(max_workers=4) as pool:
            assert relative_frequency(
                sharded, spec["focus"], spec["candidates"], pool=pool
            ) == serial["relfreq"]
            assert emerging_concepts(
                sharded, spec["trend_dim"], pool=pool
            ) == serial["emerging"]
            pooled_table = associate(
                sharded, spec["rows"], spec["cols"], pool=pool
            )
        assert_tables_identical(serial_table, pooled_table)
