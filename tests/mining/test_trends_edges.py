"""Trend-series edge cases and the bucket-gap zero-fill regression."""

import pytest

from repro.mining.index import ConceptIndex, field_key
from repro.mining.trends import (
    emerging_concepts,
    observed_bucket_range,
    trend_series,
    trend_slope,
)


def _index(rows):
    """``rows``: (doc_id, {field: value}, timestamp)."""
    index = ConceptIndex()
    for doc_id, fields, timestamp in rows:
        index.add(doc_id, fields=fields, timestamp=timestamp)
    return index


class TestObservedBucketRange:
    def test_integer_buckets_expand_to_contiguous_range(self):
        assert observed_bucket_range([4, 0, 2]) == [0, 1, 2, 3, 4]

    def test_empty_input(self):
        assert observed_bucket_range([]) == []

    def test_single_bucket(self):
        assert observed_bucket_range([7]) == [7]

    def test_non_integer_buckets_sorted_as_is(self):
        assert observed_bucket_range(["w2", "w1"]) == ["w1", "w2"]

    def test_bools_not_treated_as_integers(self):
        # range(False, True + 1) would "work" but is nonsense; bools
        # fall back to the sorted-observed path.
        assert observed_bucket_range([True, False]) == [False, True]


class TestBucketGapZeroFill:
    """Regression: interior zero-count buckets used to vanish."""

    def _gappy_index(self):
        # "billing" occurs on days 0 and 3 only; days 1-2 are quiet.
        return _index([
            (0, {"topic": "billing"}, 0),
            (1, {"topic": "billing"}, 0),
            (2, {"topic": "billing"}, 3),
        ])

    def test_gap_buckets_reported_as_zero(self):
        series = trend_series(
            self._gappy_index(), field_key("topic", "billing")
        )
        assert series == [(0, 2), (1, 0), (2, 0), (3, 1)]

    def test_slope_accounts_for_quiet_periods(self):
        # Before the fix the series collapsed to [(0, 2), (3, 1)] —
        # the quiet days 1-2 silently vanished and distorted the
        # fitted trend.
        full = trend_series(
            self._gappy_index(), field_key("topic", "billing")
        )
        collapsed = [(b, c) for b, c in full if c > 0]
        assert trend_slope(full) < 0
        assert trend_slope(full) != trend_slope(collapsed)

    def test_forced_buckets_still_win(self):
        series = trend_series(
            self._gappy_index(), field_key("topic", "billing"),
            buckets=[0, 3],
        )
        assert series == [(0, 2), (3, 1)]


class TestTrendEdgeCases:
    def test_unknown_key_gives_empty_series(self):
        index = _index([(0, {"topic": "billing"}, 0)])
        assert trend_series(index, field_key("topic", "ghost")) == []

    def test_untimestamped_only_gives_empty_series(self):
        index = _index([(0, {"topic": "billing"}, None)])
        assert trend_series(index, field_key("topic", "billing")) == []

    def test_single_bucket_series_has_zero_slope(self):
        index = _index([
            (0, {"topic": "billing"}, 5),
            (1, {"topic": "billing"}, 5),
        ])
        series = trend_series(index, field_key("topic", "billing"))
        assert series == [(5, 2)]
        assert trend_slope(series) == 0.0

    def test_all_zero_window_has_zero_slope(self):
        index = _index([(0, {"topic": "billing"}, 2)])
        series = trend_series(
            index, field_key("topic", "ghost"), buckets=[0, 1, 2]
        )
        assert series == [(0, 0), (1, 0), (2, 0)]
        assert trend_slope(series) == 0.0

    def test_forced_buckets_align_series_across_concepts(self):
        index = _index([
            (0, {"topic": "billing"}, 0),
            (1, {"topic": "roaming"}, 4),
        ])
        buckets = [0, 1, 2, 3, 4]
        billing = trend_series(
            index, field_key("topic", "billing"), buckets=buckets
        )
        roaming = trend_series(
            index, field_key("topic", "roaming"), buckets=buckets
        )
        assert [b for b, _ in billing] == [b for b, _ in roaming]
        assert trend_slope(billing) == -trend_slope(roaming)


class TestEmergingConcepts:
    def test_gap_aware_ranking(self):
        # "rising" grows steadily; "bursty" matches its total but has
        # an interior gap that the zero-fill must count against it.
        index = _index([
            (0, {"topic": "rising"}, 1),
            (1, {"topic": "rising"}, 2),
            (2, {"topic": "rising"}, 2),
            (3, {"topic": "bursty"}, 0),
            (4, {"topic": "bursty"}, 0),
            (5, {"topic": "bursty"}, 2),
        ])
        ranked = emerging_concepts(index, ("field", "topic"))
        assert [key for key, _, _ in ranked] == [
            field_key("topic", "rising"), field_key("topic", "bursty")
        ]

    def test_min_total_filters_noise(self):
        index = _index([
            (0, {"topic": "rare"}, 0),
            (1, {"topic": "rare"}, 1),
        ])
        assert emerging_concepts(index, ("field", "topic")) == []
        assert len(
            emerging_concepts(index, ("field", "topic"), min_total=2)
        ) == 1

    def test_empty_dimension(self):
        index = _index([(0, {"topic": "billing"}, 0)])
        assert emerging_concepts(index, ("field", "ghost")) == []
