"""Tests for the concept index and relative-frequency analysis."""

import pytest

from repro.annotation.concepts import AnnotatedDocument, Concept
from repro.mining.index import ConceptIndex, concept_key, field_key
from repro.mining.relfreq import relative_frequency


def make_doc(doc_id, pairs):
    concepts = [
        Concept(canonical, category, canonical, i, i + 1)
        for i, (category, canonical) in enumerate(pairs)
    ]
    return AnnotatedDocument(
        doc_id=doc_id, text="", tokens=[], concepts=concepts
    )


@pytest.fixture
def index():
    """Six calls: SUVs cluster in seattle, reservations with discounts."""
    index = ConceptIndex()
    rows = [
        (0, [("vehicle", "suv"), ("place", "seattle")], "reservation"),
        (1, [("vehicle", "suv"), ("place", "seattle")], "reservation"),
        (2, [("vehicle", "luxury"), ("place", "new york")], "unbooked"),
        (3, [("vehicle", "suv"), ("place", "boston")], "unbooked"),
        (4, [("vehicle", "compact"), ("place", "seattle")], "reservation"),
        (5, [("vehicle", "luxury"), ("place", "new york")], "reservation"),
        (6, [("vehicle", "compact"), ("place", "boston")], "unbooked"),
        (7, [("vehicle", "compact"), ("place", "new york")], "unbooked"),
    ]
    for doc_id, pairs, outcome in rows:
        index.add(
            doc_id,
            annotated=make_doc(doc_id, pairs),
            fields={"call_type": outcome},
            timestamp=doc_id % 3,
        )
    return index


class TestConceptIndex:
    def test_len_and_contains(self, index):
        assert len(index) == 8
        assert 0 in index
        assert 99 not in index

    def test_count(self, index):
        assert index.count(concept_key("vehicle", "suv")) == 3
        assert index.count(field_key("call_type", "reservation")) == 4
        assert index.count(field_key("call_type", "unbooked")) == 4

    def test_count_pair_mixing_sides(self, index):
        pair = index.count_pair(
            concept_key("vehicle", "suv"),
            field_key("call_type", "reservation"),
        )
        assert pair == 2

    def test_documents_with(self, index):
        assert index.documents_with(concept_key("place", "seattle")) == {
            0,
            1,
            4,
        }

    def test_values_of_dimension(self, index):
        assert index.values_of_dimension(("concept", "vehicle")) == [
            "compact",
            "luxury",
            "suv",
        ]
        assert index.values_of_dimension(("field", "call_type")) == [
            "reservation",
            "unbooked",
        ]

    def test_duplicate_doc_rejected(self, index):
        with pytest.raises(ValueError):
            index.add(0, fields={"x": 1})

    def test_none_fields_skipped(self):
        index = ConceptIndex()
        index.add(0, fields={"cost": None, "kind": "a"})
        assert index.count(field_key("kind", "a")) == 1
        assert index.values_of_dimension(("field", "cost")) == []

    def test_keys_of(self, index):
        keys = index.keys_of(0)
        assert concept_key("vehicle", "suv") in keys
        assert field_key("call_type", "reservation") in keys

    def test_timestamp_recorded(self, index):
        assert index.timestamp_of(4) == 1


class TestRelativeFrequency:
    def test_seattle_focus_reveals_suv(self, index):
        results = relative_frequency(
            index,
            [concept_key("place", "seattle")],
            ("concept", "vehicle"),
        )
        assert results[0].key == concept_key("vehicle", "suv")
        assert results[0].relative_frequency > 1.0

    def test_overall_frequencies_correct(self, index):
        results = relative_frequency(
            index,
            [concept_key("place", "seattle")],
            ("concept", "vehicle"),
        )
        suv = next(
            r for r in results if r.key == concept_key("vehicle", "suv")
        )
        assert suv.overall_frequency == pytest.approx(3 / 8)
        assert suv.focus_frequency == pytest.approx(2 / 3)

    def test_multiple_focus_keys_intersect(self, index):
        results = relative_frequency(
            index,
            [
                concept_key("place", "seattle"),
                field_key("call_type", "reservation"),
            ],
            ("concept", "vehicle"),
        )
        keys = [r.key for r in results]
        assert concept_key("vehicle", "suv") in keys

    def test_min_focus_count_filters(self, index):
        results = relative_frequency(
            index,
            [concept_key("place", "seattle")],
            ("concept", "vehicle"),
            min_focus_count=2,
        )
        assert all(r.focus_count >= 2 for r in results)

    def test_empty_focus_rejected(self, index):
        with pytest.raises(ValueError):
            relative_frequency(index, [], ("concept", "vehicle"))


class TestDrilldownText:
    def test_text_retained_when_requested(self):
        index = ConceptIndex(keep_documents=True)
        index.add(0, fields={"a": "x"}, text="hello world")
        assert index.text_of(0) == "hello world"

    def test_text_defaults_to_annotated(self):
        index = ConceptIndex(keep_documents=True)
        index.add(0, annotated=make_doc(0, [("vehicle", "suv")]))
        assert index.text_of(0) == ""

    def test_text_of_requires_flag(self):
        index = ConceptIndex()
        index.add(0, fields={"a": "x"})
        with pytest.raises(RuntimeError):
            index.text_of(0)

    def test_text_of_unknown_document(self):
        index = ConceptIndex(keep_documents=True)
        with pytest.raises(KeyError):
            index.text_of(99)

    def test_render_drilldown(self):
        from repro.mining.assoc2d import associate
        from repro.mining.reports import render_drilldown

        index = ConceptIndex(keep_documents=True)
        for i in range(4):
            index.add(
                i,
                fields={"place": "seattle", "vehicle": "suv"},
                text=f"call number {i} about an suv in seattle",
            )
        table = associate(index, ("field", "place"), ("field", "vehicle"))
        text = render_drilldown(table, "seattle", "suv", index, limit=2)
        assert "4 documents" in text
        assert "call number 0" in text
        assert "and 2 more" in text
