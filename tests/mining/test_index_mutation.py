"""ConceptIndex mutation: remove and duplicate-delivery policies.

The streaming consumer leans on these invariants — ``remove`` must
leave no posting, dimension-value or text residue, and
``on_duplicate="replace"`` must be indistinguishable from never having
indexed the first delivery.
"""

import pytest

from repro.mining.index import ConceptIndex, field_key


def _add(index, doc_id, fields, timestamp=None, **kwargs):
    index.add(doc_id, fields=fields, timestamp=timestamp, **kwargs)


class TestRemove:
    def test_document_fully_forgotten(self):
        index = ConceptIndex()
        _add(index, 0, {"city": "boston", "car": "suv"}, timestamp=1)
        _add(index, 1, {"city": "boston"}, timestamp=2)
        index.remove(0)
        assert len(index) == 1
        assert 0 not in index
        assert index.document_ids == [1]
        assert index.count(field_key("city", "boston")) == 1
        assert index.documents_with(field_key("city", "boston")) == {1}

    def test_last_posting_erases_dimension_value(self):
        index = ConceptIndex()
        _add(index, 0, {"city": "boston", "car": "suv"})
        _add(index, 1, {"city": "denver"})
        index.remove(0)
        assert index.values_of_dimension(("field", "city")) == ["denver"]
        # "car" lost its only value: the dimension itself disappears.
        assert index.values_of_dimension(("field", "car")) == []
        assert index.count(field_key("car", "suv")) == 0
        assert index.documents_with(field_key("car", "suv")) == set()

    def test_remove_unknown_document_raises(self):
        index = ConceptIndex()
        with pytest.raises(KeyError):
            index.remove(42)

    def test_stored_text_removed_with_document(self):
        index = ConceptIndex(keep_documents=True)
        index.add_keys(0, {field_key("city", "boston")}, text="hello")
        index.remove(0)
        with pytest.raises(KeyError):
            index.text_of(0)

    def test_add_remove_equals_never_added(self):
        reference = ConceptIndex()
        _add(reference, 0, {"city": "boston"}, timestamp=1)

        index = ConceptIndex()
        _add(index, 0, {"city": "boston"}, timestamp=1)
        _add(index, 1, {"city": "denver", "car": "luxury"}, timestamp=2)
        index.remove(1)

        assert index.document_ids == reference.document_ids
        for dimension in (("field", "city"), ("field", "car")):
            assert index.values_of_dimension(
                dimension
            ) == reference.values_of_dimension(dimension)
            assert index.keys_of_dimension(
                dimension
            ) == reference.keys_of_dimension(dimension)


class TestOnDuplicate:
    def test_default_raises(self):
        index = ConceptIndex()
        _add(index, 0, {"city": "boston"})
        with pytest.raises(ValueError):
            _add(index, 0, {"city": "denver"})

    def test_unknown_policy_rejected(self):
        index = ConceptIndex()
        with pytest.raises(ValueError, match="on_duplicate"):
            _add(index, 0, {"city": "boston"}, on_duplicate="maybe")

    def test_skip_keeps_first_delivery(self):
        index = ConceptIndex()
        _add(index, 0, {"city": "boston"}, timestamp=1)
        _add(index, 0, {"city": "denver"}, timestamp=9,
             on_duplicate="skip")
        assert index.keys_of(0) == {field_key("city", "boston")}
        assert index.timestamp_of(0) == 1

    def test_replace_takes_last_delivery(self):
        index = ConceptIndex()
        _add(index, 0, {"city": "boston"}, timestamp=1)
        _add(index, 0, {"city": "denver"}, timestamp=9,
             on_duplicate="replace")
        assert index.keys_of(0) == {field_key("city", "denver")}
        assert index.timestamp_of(0) == 9
        assert index.values_of_dimension(("field", "city")) == ["denver"]

    def test_replace_equals_single_add(self):
        reference = ConceptIndex()
        _add(reference, 0, {"city": "denver"}, timestamp=9)

        index = ConceptIndex()
        _add(index, 0, {"city": "boston", "car": "suv"}, timestamp=1)
        _add(index, 0, {"city": "denver"}, timestamp=9,
             on_duplicate="replace")

        assert index.document_ids == reference.document_ids
        assert index.keys_of(0) == reference.keys_of(0)
        for dimension in (("field", "city"), ("field", "car")):
            assert index.values_of_dimension(
                dimension
            ) == reference.values_of_dimension(dimension)

    def test_replace_moves_document_to_insertion_tail(self):
        index = ConceptIndex()
        _add(index, 0, {"city": "boston"})
        _add(index, 1, {"city": "denver"})
        _add(index, 0, {"city": "miami"}, on_duplicate="replace")
        assert index.document_ids == [1, 0]
