"""Edge cases of the relevancy analysis: empty focus, filters, ties."""

import pytest

from repro.mining.index import ConceptIndex, concept_key, field_key
from repro.mining.relfreq import relative_frequency
from repro.mining.sharded import ShardedConceptIndex


def build(index):
    """Eight documents; no document carries channel=fax."""
    rows = [
        (0, "suv", "email"),
        (1, "suv", "email"),
        (2, "luxury", "sms"),
        (3, "suv", "sms"),
        (4, "compact", "email"),
        (5, "luxury", "sms"),
        (6, "compact", "sms"),
        (7, "compact", "email"),
    ]
    for doc_id, vehicle, channel in rows:
        index.add_keys(
            doc_id,
            [
                concept_key("vehicle", vehicle),
                field_key("channel", channel),
            ],
        )
    return index


@pytest.fixture(params=[0, 3])
def index(request):
    """Both layouts: single (0) and a 3-shard partition."""
    if request.param:
        return build(ShardedConceptIndex(request.param))
    return build(ConceptIndex())


class TestEmptyFocusSubset:
    def test_empty_focus_yields_no_results_by_default(self, index):
        # channel=fax matches nothing, so every candidate has
        # focus_count 0 and the default min_focus_count=1 drops all.
        results = relative_frequency(
            index, [field_key("channel", "fax")], ("concept", "vehicle")
        )
        assert results == []

    def test_empty_focus_with_zero_threshold(self, index):
        # With the filter off, every candidate surfaces with
        # focus_total == 0 and a well-defined zero relative frequency
        # (no ZeroDivisionError).
        results = relative_frequency(
            index,
            [field_key("channel", "fax")],
            ("concept", "vehicle"),
            min_focus_count=0,
        )
        assert len(results) == 3
        for result in results:
            assert result.focus_total == 0
            assert result.focus_count == 0
            assert result.focus_frequency == pytest.approx(0.0)
            assert result.relative_frequency == pytest.approx(0.0)

    def test_conjunction_can_empty_the_subset(self, index):
        # Two focus keys no document carries together.
        results = relative_frequency(
            index,
            [field_key("channel", "email"), field_key("channel", "sms")],
            ("concept", "vehicle"),
        )
        assert results == []

    def test_no_focus_keys_rejected(self, index):
        with pytest.raises(ValueError, match="at least one focus key"):
            relative_frequency(index, [], ("concept", "vehicle"))


class TestMinFocusCount:
    def test_threshold_filters_rare_candidates(self, index):
        focus = [field_key("channel", "email")]
        unfiltered = relative_frequency(
            index, focus, ("concept", "vehicle"), min_focus_count=1
        )
        assert {r.key[2] for r in unfiltered} == {"suv", "compact"}
        filtered = relative_frequency(
            index, focus, ("concept", "vehicle"), min_focus_count=2
        )
        assert {r.key[2] for r in filtered} == {"suv", "compact"}
        strict = relative_frequency(
            index, focus, ("concept", "vehicle"), min_focus_count=3
        )
        assert strict == []

    def test_filter_does_not_change_surviving_rows(self, index):
        focus = [field_key("channel", "email")]
        loose = relative_frequency(
            index, focus, ("concept", "vehicle"), min_focus_count=0
        )
        tight = relative_frequency(
            index, focus, ("concept", "vehicle"), min_focus_count=2
        )
        survivors = [r for r in loose if r.focus_count >= 2]
        assert tight == survivors


class TestTieOrdering:
    def test_ties_break_by_key_ascending(self, index):
        # suv and compact both appear 2/5 in the email subset against
        # identical overall counts: an exact relative-frequency tie.
        results = relative_frequency(
            index,
            [field_key("channel", "email")],
            ("concept", "vehicle"),
        )
        assert results[0].relative_frequency == pytest.approx(
            results[1].relative_frequency
        )
        assert [r.key[2] for r in results] == ["compact", "suv"]

    def test_order_is_deterministic_across_runs(self, index):
        focus = [field_key("channel", "sms")]
        first = relative_frequency(index, focus, ("concept", "vehicle"))
        for _ in range(3):
            assert relative_frequency(
                index, focus, ("concept", "vehicle")
            ) == first
