"""Tests for the OLAP-style concept cube."""

import pytest

from repro.annotation.concepts import AnnotatedDocument, Concept
from repro.mining.index import ConceptIndex
from repro.mining.olap import ConceptCube


@pytest.fixture
def index():
    index = ConceptIndex()
    rows = [
        ("seattle", "suv", "reservation"),
        ("seattle", "suv", "reservation"),
        ("seattle", "luxury", "unbooked"),
        ("boston", "suv", "unbooked"),
        ("boston", "full-size", "reservation"),
        (None, "suv", "reservation"),  # no place mentioned
    ]
    for doc_id, (place, vehicle, outcome) in enumerate(rows):
        concepts = []
        if place is not None:
            concepts.append(Concept(place, "place", place, 0, 1))
        concepts.append(Concept(vehicle, "vehicle", vehicle, 1, 2))
        annotated = AnnotatedDocument(
            doc_id=doc_id, text="", tokens=[], concepts=concepts
        )
        index.add(doc_id, annotated=annotated,
                  fields={"outcome": outcome})
    return index


DIMS = [("concept", "place"), ("concept", "vehicle"), ("field", "outcome")]


class TestConceptCube:
    def test_total_conserved(self, index):
        cube = ConceptCube(index, DIMS)
        assert cube.total == 6

    def test_full_coordinates_cells(self, index):
        cube = ConceptCube(index, DIMS)
        cells = cube.cells()
        top = cells[0]
        assert top.coordinates == ("seattle", "suv", "reservation")
        assert top.count == 2

    def test_missing_dimension_bucketed_as_none(self, index):
        cube = ConceptCube(index, DIMS)
        with_empty = cube.cells(include_empty_coordinates=True)
        none_cells = [
            c for c in with_empty if c.coordinates[0] is None
        ]
        assert sum(c.count for c in none_cells) == 1

    def test_slice(self, index):
        cube = ConceptCube(index, DIMS)
        seattle = cube.slice(("concept", "place"), "seattle")
        assert seattle[("suv", "reservation")] == 2
        assert sum(seattle.values()) == 3

    def test_slice_unknown_dimension(self, index):
        cube = ConceptCube(index, DIMS)
        with pytest.raises(KeyError):
            cube.slice(("field", "nothing"), "x")

    def test_rollup_matches_index_counts(self, index):
        from repro.mining.index import field_key

        cube = ConceptCube(index, DIMS)
        outcome_margin = cube.margin(("field", "outcome"))
        assert outcome_margin["reservation"] == index.count(
            field_key("outcome", "reservation")
        )

    def test_rollup_two_dimensions(self, index):
        cube = ConceptCube(index, DIMS)
        rolled = cube.rollup([("concept", "place"), ("field", "outcome")])
        assert rolled[("seattle", "reservation")] == 2

    def test_rollup_conserves_total(self, index):
        cube = ConceptCube(index, DIMS)
        rolled = cube.rollup([("concept", "vehicle")])
        assert sum(rolled.values()) == cube.total

    def test_dice(self, index):
        cube = ConceptCube(index, DIMS)
        reservations = cube.dice(
            lambda coords: coords[2] == "reservation"
        )
        assert sum(reservations.values()) == 4

    def test_empty_dimensions_rejected(self, index):
        with pytest.raises(ValueError):
            ConceptCube(index, [])

    def test_multivalued_documents_bucketed(self):
        index = ConceptIndex()
        concepts = [
            Concept("suv", "vehicle", "suv", 0, 1),
            Concept("luxury", "vehicle", "luxury", 1, 2),
        ]
        index.add(
            0,
            annotated=AnnotatedDocument(
                doc_id=0, text="", tokens=[], concepts=concepts
            ),
        )
        cube = ConceptCube(index, [("concept", "vehicle")])
        cells = cube.cells()
        assert cells[0].coordinates == ("<multi>",)
