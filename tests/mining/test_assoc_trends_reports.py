"""Tests for 2-D association analysis, trends and report rendering."""

import pytest

from repro.mining.assoc2d import associate
from repro.mining.index import ConceptIndex, concept_key, field_key
from repro.mining.reports import (
    outcome_percentage_table,
    render_association,
    render_relevancy,
)
from repro.mining.relfreq import relative_frequency
from repro.mining.trends import trend_series, trend_slope


@pytest.fixture
def index():
    """40 calls with a strong seattle<->suv association planted."""
    index = ConceptIndex()
    doc_id = 0

    def add(place, vehicle, outcome, count, start_ts=0):
        nonlocal doc_id
        for i in range(count):
            index.add(
                doc_id,
                fields={"place": place, "vehicle": vehicle,
                        "outcome": outcome},
                timestamp=start_ts + (i % 4),
            )
            doc_id += 1

    add("seattle", "suv", "reservation", 12)
    add("seattle", "luxury", "unbooked", 2)
    add("new york", "luxury", "reservation", 10)
    add("new york", "suv", "unbooked", 2)
    add("boston", "full-size", "reservation", 8)
    add("boston", "suv", "unbooked", 6)
    return index


class TestAssociate:
    def test_marginals_and_counts(self, index):
        table = associate(index, ("field", "place"), ("field", "vehicle"))
        cell = table.cell("seattle", "suv")
        assert cell.count == 12
        assert cell.row_total == 14
        assert cell.col_total == 20
        assert cell.grand_total == 40

    def test_planted_association_is_strongest(self, index):
        table = associate(index, ("field", "place"), ("field", "vehicle"))
        strongest = table.strongest(2, min_count=3)
        pairs = {(c.row_value, c.col_value) for c in strongest}
        assert ("new york", "luxury") in pairs
        # Seattle-SUV is also in the top cells.
        top5 = {
            (c.row_value, c.col_value) for c in table.strongest(5,
                                                                min_count=3)
        }
        assert ("seattle", "suv") in top5

    def test_strength_below_point_lift(self, index):
        table = associate(index, ("field", "place"), ("field", "vehicle"))
        for cell in table.cells():
            assert cell.strength <= cell.point_lift + 1e-9

    def test_sparse_cell_downweighted(self, index):
        table = associate(index, ("field", "place"), ("field", "vehicle"))
        sparse = table.cell("seattle", "luxury")  # count 2
        dense = table.cell("seattle", "suv")  # count 12
        assert sparse.strength < dense.strength

    def test_drilldown_documents(self, index):
        table = associate(index, ("field", "place"), ("field", "vehicle"))
        docs = table.documents("seattle", "suv")
        assert len(docs) == 12
        for doc_id in docs:
            keys = index.keys_of(doc_id)
            assert field_key("place", "seattle") in keys
            assert field_key("vehicle", "suv") in keys

    def test_row_share_matrix(self, index):
        table = associate(index, ("field", "place"), ("field", "outcome"))
        shares = table.row_share_matrix()
        assert shares["seattle"]["reservation"] == pytest.approx(12 / 14)

    def test_missing_cell_raises(self, index):
        table = associate(index, ("field", "place"), ("field", "vehicle"))
        with pytest.raises(KeyError):
            table.cell("mars", "suv")

    def test_explicit_value_lists(self, index):
        table = associate(
            index,
            ("field", "place"),
            ("field", "vehicle"),
            row_values=["seattle"],
            col_values=["suv", "luxury"],
        )
        assert table.row_values == ["seattle"]
        assert len(table.cells()) == 2

    def test_empty_index_rejected(self):
        with pytest.raises(ValueError):
            associate(ConceptIndex(), ("field", "a"), ("field", "b"))

    def test_normal_interval_method(self, index):
        table = associate(
            index,
            ("field", "place"),
            ("field", "vehicle"),
            interval_method="normal",
        )
        assert table.cell("seattle", "suv").strength > 0


class TestTrends:
    def test_series_counts_by_bucket(self, index):
        series = trend_series(index, field_key("place", "seattle"))
        assert sum(count for _, count in series) == 14

    def test_series_with_forced_buckets(self, index):
        series = trend_series(
            index, field_key("place", "seattle"), buckets=[0, 1, 2, 3, 9]
        )
        assert series[-1] == (9, 0)

    def test_slope_rising(self):
        assert trend_slope([(0, 1), (1, 3), (2, 5)]) == pytest.approx(2.0)

    def test_slope_flat(self):
        assert trend_slope([(0, 2), (1, 2), (2, 2)]) == 0.0

    def test_slope_short_series(self):
        assert trend_slope([(0, 5)]) == 0.0

    def test_no_timestamp_docs_skipped(self):
        index = ConceptIndex()
        index.add(0, fields={"a": "x"})
        assert trend_series(index, field_key("a", "x")) == []


class TestReports:
    def test_render_association_counts(self, index):
        table = associate(index, ("field", "place"), ("field", "vehicle"))
        text = render_association(table, title="Table II")
        assert "Table II" in text
        assert "seattle" in text
        assert "12" in text

    def test_render_association_strength(self, index):
        table = associate(index, ("field", "place"), ("field", "vehicle"))
        text = render_association(table, value="strength")
        assert "seattle" in text

    def test_render_association_invalid_value(self, index):
        table = associate(index, ("field", "place"), ("field", "vehicle"))
        with pytest.raises(ValueError):
            render_association(table, value="banana")

    def test_outcome_percentage_rows_sum_to_100(self, index):
        table = associate(index, ("field", "place"), ("field", "outcome"))
        text = outcome_percentage_table(
            table, col_order=["reservation", "unbooked"]
        )
        assert "86%" in text  # seattle 12/14

    def test_render_relevancy(self, index):
        results = relative_frequency(
            index,
            [field_key("place", "seattle")],
            ("field", "vehicle"),
        )
        text = render_relevancy(results, title="relevancy")
        assert "relevancy" in text
        assert "suv" in text
