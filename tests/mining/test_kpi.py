"""Tests for the contact-center KPI reports."""

import pytest

from repro.mining.kpi import (
    agent_kpis,
    daily_booking_series,
    leaderboard,
    render_kpi_report,
)
from repro.synth.carrental import CarRentalConfig, generate_car_rental


@pytest.fixture(scope="module")
def corpus():
    return generate_car_rental(
        CarRentalConfig(
            n_agents=8,
            n_days=3,
            calls_per_agent_per_day=5,
            n_customers=80,
            seed=9,
        )
    )


class TestAgentKpis:
    def test_one_row_per_agent(self, corpus):
        kpis = agent_kpis(corpus.database)
        assert len(kpis) == 8
        assert [k.agent_name for k in kpis] == sorted(
            k.agent_name for k in kpis
        )

    def test_call_counts_partition(self, corpus):
        for kpi in agent_kpis(corpus.database):
            assert (
                kpi.reservations + kpi.unbooked + kpi.service_calls
                == kpi.total_calls
            )

    def test_totals_match_warehouse(self, corpus):
        kpis = agent_kpis(corpus.database)
        assert sum(k.total_calls for k in kpis) == len(
            corpus.database.table("calls")
        )

    def test_booking_ratio_bounds(self, corpus):
        for kpi in agent_kpis(corpus.database):
            assert 0.0 <= kpi.booking_ratio <= 1.0

    def test_revenue_only_from_reservations(self, corpus):
        calls = corpus.database.table("calls")
        expected = sum(
            record["booking_cost"] or 0 for record in calls
        )
        kpis = agent_kpis(corpus.database)
        assert sum(k.revenue for k in kpis) == pytest.approx(expected)

    def test_revenue_per_call(self, corpus):
        kpi = agent_kpis(corpus.database)[0]
        assert kpi.revenue_per_call == pytest.approx(
            kpi.revenue / kpi.total_calls
        )


class TestSeriesAndLeaderboard:
    def test_daily_series_covers_all_days(self, corpus):
        series = daily_booking_series(corpus.database)
        assert [day for day, _, _ in series] == [0, 1, 2]

    def test_daily_volume_sums(self, corpus):
        series = daily_booking_series(corpus.database)
        assert sum(volume for _, _, volume in series) == len(
            corpus.database.table("calls")
        )

    def test_leaderboard_sorted_desc(self, corpus):
        board = leaderboard(corpus.database, top=5)
        ratios = [kpi.booking_ratio for kpi in board]
        assert ratios == sorted(ratios, reverse=True)
        assert len(board) <= 5

    def test_render_report(self, corpus):
        text = render_kpi_report(corpus.database, top=3)
        assert "Agent leaderboard" in text
        assert "Daily booking ratio" in text
