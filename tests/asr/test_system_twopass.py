"""End-to-end ASR tests: system WER bands and two-pass improvement."""

import pytest

from repro.asr.calibrate import WERTargets, measure_wer
from repro.asr.system import ASRSystem
from repro.asr.twopass import (
    constrained_decode,
    name_words_of,
    two_pass_transcribe,
)
from repro.asr.vocabulary import NAME_CLASS
from repro.asr.wer import WERBreakdown
from repro.synth.carrental import CarRentalConfig, generate_car_rental


@pytest.fixture(scope="module")
def corpus():
    return generate_car_rental(
        CarRentalConfig(
            n_agents=10,
            n_days=2,
            calls_per_agent_per_day=4,
            n_customers=80,
            seed=3,
        )
    )


@pytest.fixture(scope="module")
def system(corpus):
    return ASRSystem.build_default(
        extra_sentences=[t.text for t in corpus.transcripts[:20]]
    )


class TestASRSystem:
    def test_transcription_structure(self, system):
        transcription = system.transcribe("i want to book a car")
        assert transcription.reference_tokens[0] == "i"
        assert transcription.hypothesis_tokens
        assert transcription.text.isupper()

    def test_accepts_token_list(self, system):
        transcription = system.transcribe(["book", "a", "car"])
        assert transcription.reference_tokens == ["book", "a", "car"]

    def test_default_channel_near_table1_operating_point(
        self, corpus, system
    ):
        test = [t.text for t in corpus.transcripts[20:60]]
        breakdown = measure_wer(system, test, reset_seed=555)
        # Wide bands: the paper's operating point is 45/65/45 and the
        # defaults were calibrated against it; small corpora wobble.
        assert 0.30 < breakdown.wer() < 0.60
        assert 0.45 < breakdown.wer(NAME_CLASS) < 0.85
        assert breakdown.wer(NAME_CLASS) > breakdown.wer()

    def test_transcribe_many(self, system):
        results = system.transcribe_many(["book a car", "thank you"])
        assert len(results) == 2


class TestTwoPass:
    def test_name_words_of(self, corpus):
        customers = corpus.database.table("customers")
        words = name_words_of([customers.get(0), customers.get(1)])
        assert len(words) >= 2

    def test_constrained_decode_restricts_only_with_evidence(
        self, corpus, system
    ):
        system.channel.reset(77)
        truth = corpus.truths[corpus.transcripts[25].call_id]
        customers = corpus.database.table("customers")
        person = customers.get(truth.customer_entity_id)
        transcription = system.transcribe(
            corpus.transcripts[25].text
        )
        allowed = frozenset(person["name"].split())
        words, constrained = constrained_decode(
            system.decoder, transcription.network, allowed
        )
        assert isinstance(words, list)
        assert constrained >= 0

    def test_two_pass_improves_names_with_oracle_identity(
        self, corpus, system
    ):
        """With the true identity in the top-N, name WER must drop."""
        customers = corpus.database.table("customers")
        agent_words = set()
        for agent in corpus.agents:
            agent_words.update(agent.name.split())
        first = WERBreakdown()
        second = WERBreakdown()
        system.channel.reset(888)
        for transcript in corpus.transcripts[20:60]:
            truth = corpus.truths[transcript.call_id]
            transcription = system.transcribe(transcript.text)
            person = customers.get(truth.customer_entity_id)
            result = two_pass_transcribe(
                system.decoder,
                transcription,
                [person],
                extra_allowed=agent_words,
            )
            first.add(
                transcription.reference_tokens,
                result.first_pass,
                transcription.reference_classes,
            )
            second.add(
                transcription.reference_tokens,
                result.second_pass,
                transcription.reference_classes,
            )
        improvement = first.wer(NAME_CLASS) - second.wer(NAME_CLASS)
        assert improvement > 0.05
        # Non-name WER is essentially untouched.
        assert abs(first.wer("general") - second.wer("general")) < 0.02

    def test_empty_allowed_set_is_noop(self, corpus, system):
        system.channel.reset(99)
        transcription = system.transcribe(corpus.transcripts[30].text)
        result = two_pass_transcribe(system.decoder, transcription, [])
        assert result.second_pass == result.first_pass


class TestWERTargets:
    def test_defaults_match_table1(self):
        targets = WERTargets()
        assert targets.overall == pytest.approx(0.45)
        assert targets.names == pytest.approx(0.65)
        assert targets.numbers == pytest.approx(0.45)
