"""Tests for WER computation and per-class attribution."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.asr.wer import WERBreakdown, word_error_rate

tokens = st.lists(st.sampled_from("abcde"), min_size=0, max_size=10)


class TestWordErrorRate:
    def test_perfect(self):
        assert word_error_rate("a b c".split(), "a b c".split()) == 0.0

    def test_one_substitution(self):
        assert word_error_rate("a b c".split(), "a x c".split()) == (
            pytest.approx(1 / 3)
        )

    def test_deletion_and_insertion(self):
        # S=0 D=1 I=1 N=3 -> 2/3
        assert word_error_rate(
            "a b c".split(), "a c d".split()
        ) == pytest.approx(2 / 3)

    def test_wer_can_exceed_one(self):
        assert word_error_rate(["a"], ["x", "y", "z"]) > 1.0

    @given(tokens, tokens)
    def test_non_negative(self, ref, hyp):
        if not ref:
            return
        assert word_error_rate(ref, hyp) >= 0.0


class TestWERBreakdown:
    def test_per_class_substitution_attribution(self):
        breakdown = WERBreakdown()
        breakdown.add(
            ["my", "name", "is", "john"],
            ["my", "name", "is", "jon"],
            ["general", "general", "general", "name"],
        )
        assert breakdown.wer("name") == 1.0
        assert breakdown.wer("general") == 0.0
        assert breakdown.wer() == pytest.approx(0.25)

    def test_deletion_attribution(self):
        breakdown = WERBreakdown()
        breakdown.add(
            ["five", "five", "nine"],
            ["five", "nine"],
            ["number", "number", "number"],
        )
        assert breakdown.counts("number").deletions == 1

    def test_insertions_go_to_general(self):
        breakdown = WERBreakdown()
        breakdown.add(
            ["call", "me"],
            ["call", "me", "now"],
            ["general", "general"],
        )
        assert breakdown.counts("general").insertions == 1
        assert breakdown.wer() == pytest.approx(0.5)

    def test_accumulates_across_utterances(self):
        breakdown = WERBreakdown()
        breakdown.add(["a"], ["a"])
        breakdown.add(["b"], ["x"])
        assert breakdown.overall.reference_words == 2
        assert breakdown.wer() == pytest.approx(0.5)

    def test_class_mismatch_rejected(self):
        with pytest.raises(ValueError):
            WERBreakdown().add(["a", "b"], ["a"], ["general"])

    def test_case_normalised(self):
        breakdown = WERBreakdown()
        breakdown.add(["JOHN"], ["john"], ["name"])
        assert breakdown.wer("name") == 0.0

    def test_empty_class_wer_zero(self):
        assert WERBreakdown().wer("name") == 0.0

    @given(tokens)
    def test_identity_has_zero_wer(self, ref):
        breakdown = WERBreakdown()
        breakdown.add(ref, ref)
        assert breakdown.wer() == 0.0
