"""Tests for the acoustic channel, vocabulary and Viterbi decoder."""

import pytest

from repro.asr.acoustic import AcousticChannel, ChannelConfig
from repro.asr.decoder import Decoder
from repro.asr.lm import NGramLM
from repro.asr.vocabulary import (
    GENERAL_CLASS,
    NAME_CLASS,
    NUMBER_CLASS,
    TokenClassifier,
    Vocabulary,
    build_vocabulary,
)

WORDS = [
    "book", "a", "car", "smith", "smyth", "walker", "john", "jon",
    "five", "nine", "four", "rate", "rental", "the", "for",
]


@pytest.fixture(scope="module")
def vocabulary():
    return Vocabulary(WORDS)


@pytest.fixture(scope="module")
def lm():
    return NGramLM().fit(
        [
            "book a car".split(),
            "the rate for a car".split(),
            "john smith".split(),
        ]
    )


class TestTokenClassifier:
    def test_name_detection(self):
        classifier = TokenClassifier()
        assert classifier.classify("smith") == NAME_CLASS
        assert classifier.classify("JOHN") == NAME_CLASS

    def test_number_detection(self):
        classifier = TokenClassifier()
        assert classifier.classify("five") == NUMBER_CLASS
        assert classifier.classify("seventy") == NUMBER_CLASS

    def test_general_fallback(self):
        assert TokenClassifier().classify("car") == GENERAL_CLASS

    def test_classify_all(self):
        classifier = TokenClassifier()
        assert classifier.classify_all(["john", "five", "car"]) == [
            NAME_CLASS,
            NUMBER_CLASS,
            GENERAL_CLASS,
        ]


class TestVocabulary:
    def test_contains(self, vocabulary):
        assert "book" in vocabulary
        assert "BOOK" in vocabulary
        assert "zebra" not in vocabulary

    def test_confusions_exclude_self(self, vocabulary):
        assert all(
            word != "smith" for word, _ in vocabulary.confusions("smith")
        )

    def test_confusions_phonetically_close(self, vocabulary):
        confused = dict(vocabulary.confusions("smith"))
        assert "smyth" in confused

    def test_digit_confusions_always_included(self, vocabulary):
        confused = dict(vocabulary.confusions("five"))
        assert "nine" in confused or "four" in confused

    def test_confusions_same_class_or_near_homophone(self, vocabulary):
        from repro.util.phonetics import phonetic_similarity

        classifier = vocabulary.classifier
        for word, _ in vocabulary.confusions("john"):
            in_class = classifier.classify(word) == NAME_CLASS
            near_homophone = phonetic_similarity("john", word) >= 0.75
            assert in_class or near_homophone

    def test_confusions_cached(self, vocabulary):
        first = vocabulary.confusions("walker")
        assert vocabulary.confusions("walker") is first

    def test_build_vocabulary_includes_lexicons(self):
        vocab = build_vocabulary()
        assert "reservation" in vocab
        assert "smith" in vocab
        assert "seven" in vocab
        assert vocab.name_words


class TestAcousticChannel:
    def test_clean_channel_keeps_words(self, vocabulary):
        config = ChannelConfig(
            sigma_general=0.0,
            sigma_name=0.0,
            sigma_number=0.0,
            deletion_rate=0.0,
            insertion_rate=0.0,
            extra_name_candidates=0,
        )
        channel = AcousticChannel(vocabulary, config)
        network = channel.encode("book a car".split())
        # With zero noise the true word has the top acoustic score.
        for slot in network.slots:
            assert slot.candidates[0][0] == slot.reference

    def test_deletions_drop_slots(self, vocabulary):
        config = ChannelConfig(deletion_rate=1.0, insertion_rate=0.0,
                               name_deletion_multiplier=1.0)
        channel = AcousticChannel(vocabulary, config)
        network = channel.encode("book a car".split())
        assert network.slots == []
        assert network.reference_tokens == ["book", "a", "car"]

    def test_insertions_add_filler_slots(self, vocabulary):
        config = ChannelConfig(deletion_rate=0.0, insertion_rate=1.0)
        channel = AcousticChannel(vocabulary, config)
        network = channel.encode("book a car".split())
        inserted = [slot for slot in network.slots if slot.kind == "ins"]
        assert len(inserted) == 3
        for slot in inserted:
            assert slot.reference is None

    def test_name_slots_get_extra_candidates(self, vocabulary):
        with_pool = ChannelConfig(
            deletion_rate=0.0, insertion_rate=0.0, extra_name_candidates=20
        )
        without_pool = ChannelConfig(
            deletion_rate=0.0, insertion_rate=0.0, extra_name_candidates=0
        )
        pooled_slot = AcousticChannel(vocabulary, with_pool).encode(
            ["smith"]
        ).slots[0]
        bare_slot = AcousticChannel(vocabulary, without_pool).encode(
            ["smith"]
        ).slots[0]
        assert len(pooled_slot.candidates) > len(bare_slot.candidates)
        # All of the vocabulary's other name words eventually appear.
        pooled_words = set(pooled_slot.words())
        assert {"john", "walker"} <= pooled_words

    def test_classes_must_align(self, vocabulary):
        channel = AcousticChannel(vocabulary)
        with pytest.raises(ValueError):
            channel.encode(["book", "car"], classes=["general"])

    def test_reset_reproduces_noise(self, vocabulary):
        channel = AcousticChannel(vocabulary)
        channel.reset(42)
        first = channel.encode("book a car".split())
        channel.reset(42)
        second = channel.encode("book a car".split())
        assert [s.candidates for s in first.slots] == [
            s.candidates for s in second.slots
        ]


class TestDecoder:
    def test_decodes_clean_network_exactly(self, vocabulary, lm):
        config = ChannelConfig(
            sigma_general=0.0, sigma_name=0.0, sigma_number=0.0,
            deletion_rate=0.0, insertion_rate=0.0,
            extra_name_candidates=0,
        )
        channel = AcousticChannel(vocabulary, config)
        decoder = Decoder(lm, lm_weight=0.1)
        network = channel.encode("book a car".split())
        assert decoder.decode(network) == ["book", "a", "car"]

    def test_lm_breaks_acoustic_ties(self, vocabulary, lm):
        from repro.asr.acoustic import Slot, ConfusionNetwork

        network = ConfusionNetwork(
            slots=[
                Slot([("book", 0.0)], "book", GENERAL_CLASS),
                Slot([("a", 0.0)], "a", GENERAL_CLASS),
                # Tie acoustically; the LM has seen "a car".
                Slot([("car", 0.0), ("walker", 0.0)], "car", GENERAL_CLASS),
            ],
            reference_tokens=["book", "a", "car"],
            reference_classes=[GENERAL_CLASS] * 3,
        )
        decoder = Decoder(lm, lm_weight=2.0)
        assert decoder.decode(network)[-1] == "car"

    def test_empty_network(self, lm):
        from repro.asr.acoustic import ConfusionNetwork

        decoder = Decoder(lm)
        network = ConfusionNetwork(
            slots=[], reference_tokens=[], reference_classes=[]
        )
        assert decoder.decode(network) == []

    def test_decode_to_text_upper(self, vocabulary, lm):
        config = ChannelConfig(
            sigma_general=0.0, sigma_name=0.0, sigma_number=0.0,
            deletion_rate=0.0, insertion_rate=0.0,
            extra_name_candidates=0,
        )
        channel = AcousticChannel(vocabulary, config)
        decoder = Decoder(lm)
        network = channel.encode("book a car".split())
        assert decoder.decode_to_text(network, upper=True) == "BOOK A CAR"

    def test_constraint_restricts_slot(self, vocabulary, lm):
        channel = AcousticChannel(
            vocabulary,
            ChannelConfig(deletion_rate=0.0, insertion_rate=0.0),
        )
        decoder = Decoder(lm)
        network = channel.encode(["smith"])

        def constraint(slot):
            return [("walker", 0.0)]

        assert decoder.decode(network, constraint=constraint) == ["walker"]
