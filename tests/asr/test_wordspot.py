"""Tests for the word-spotting baseline."""

import pytest

from repro.asr.acoustic import ConfusionNetwork, Slot
from repro.asr.wordspot import (
    KeywordHit,
    KeywordSpotter,
    phrase_spotter_for_category,
)
from repro.asr.vocabulary import GENERAL_CLASS


def network_from(slot_candidates):
    slots = [
        Slot(candidates=list(candidates), reference=None,
             token_class=GENERAL_CLASS)
        for candidates in slot_candidates
    ]
    return ConfusionNetwork(
        slots=slots, reference_tokens=[], reference_classes=[]
    )


class TestKeywordSpotter:
    def test_spots_dominant_keyword(self):
        network = network_from([[("discount", 0.5), ("the", -0.5)]])
        spotter = KeywordSpotter({"discount"})
        hits = spotter.spot(network)
        assert len(hits) == 1
        assert hits[0].keyword == "discount"
        assert hits[0].score == pytest.approx(1.0)

    def test_threshold_rejects_weak_evidence(self):
        network = network_from([[("the", 0.5), ("discount", -0.5)]])
        assert not KeywordSpotter({"discount"}, threshold=0.0).spot(network)
        assert KeywordSpotter({"discount"}, threshold=-2.0).spot(network)

    def test_keyword_only_slot_is_infinite_evidence(self):
        network = network_from([[("discount", -3.0)]])
        hits = KeywordSpotter({"discount"}).spot(network)
        assert hits and hits[0].score == float("inf")

    def test_multiple_slots_multiple_hits(self):
        network = network_from(
            [
                [("discount", 0.4), ("x", 0.0)],
                [("club", 0.4), ("y", 0.0)],
            ]
        )
        spotter = KeywordSpotter({"discount", "club"})
        assert spotter.spotted_keywords(network) == {"discount", "club"}

    def test_contains_any(self):
        network = network_from([[("nothing", 0.0)]])
        assert not KeywordSpotter({"discount"}).contains_any(network)

    def test_case_normalised(self):
        spotter = KeywordSpotter({"DISCOUNT"})
        network = network_from([[("discount", 1.0), ("a", 0.0)]])
        assert spotter.contains_any(network)

    def test_empty_keywords_rejected(self):
        with pytest.raises(ValueError):
            KeywordSpotter(set())

    def test_slot_index_recorded(self):
        network = network_from(
            [[("a", 0.0)], [("discount", 1.0), ("b", 0.0)]]
        )
        hits = KeywordSpotter({"discount"}).spot(network)
        assert hits[0].slot_index == 1


class TestPhraseSpotterBuilder:
    def test_splits_multiword_surfaces(self):
        spotter = phrase_spotter_for_category(["motor club discount"])
        assert spotter.keywords == {"motor", "club", "discount"}

    def test_short_words_dropped(self):
        spotter = phrase_spotter_for_category(["go to club"])
        assert "to" not in spotter.keywords
        assert "go" not in spotter.keywords

    def test_accepts_dictionary_entries(self):
        from repro.annotation.dictionary import DictionaryEntry

        entry = DictionaryEntry("corporate program", "discount", "discount")
        spotter = phrase_spotter_for_category([entry])
        assert "corporate" in spotter.keywords
