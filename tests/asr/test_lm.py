"""Tests for the interpolated n-gram language model."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.asr.lm import InterpolatedLM, NGramLM, build_interpolated_lm

CORPUS = [
    "i want to book a car".split(),
    "i want to book a suv".split(),
    "the rate for a car is forty dollars".split(),
    "thank you for calling".split(),
]


@pytest.fixture(scope="module")
def lm():
    return NGramLM().fit(CORPUS)


class TestNGramLM:
    def test_probabilities_sum_reasonably(self, lm):
        # Over the known vocabulary, conditional probs are a distribution
        # (up to the reserved <unk> mass).
        total = sum(
            lm.probability(word, ("want",)) for word in lm.vocabulary
        )
        assert 0.9 < total <= 1.0 + 1e-6

    def test_seen_bigram_beats_unseen(self, lm):
        assert lm.probability("to", ("want",)) > lm.probability(
            "dollars", ("want",)
        )

    def test_trigram_context_used(self, lm):
        with_context = lm.probability("book", ("want", "to"))
        without = lm.probability("book", ())
        assert with_context > without

    def test_unknown_word_gets_floor(self, lm):
        prob = lm.probability("zzzzz")
        assert 0.0 < prob < 0.05

    def test_logprob_is_log_of_probability(self, lm):
        assert lm.logprob("car", ("a",)) == pytest.approx(
            math.log(lm.probability("car", ("a",)))
        )

    def test_case_insensitive(self, lm):
        assert lm.probability("CAR", ("A",)) == lm.probability("car", ("a",))

    def test_sentence_logprob_finite(self, lm):
        assert math.isfinite(
            lm.sentence_logprob("i want to book a car".split())
        )

    def test_perplexity_lower_on_training_like_text(self, lm):
        train_like = [["i", "want", "to", "book", "a", "car"]]
        shuffled = [["car", "a", "book", "to", "want", "i"]]
        assert lm.perplexity(train_like) < lm.perplexity(shuffled)

    def test_perplexity_empty_corpus_rejected(self, lm):
        with pytest.raises(ValueError):
            lm.perplexity([])

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            NGramLM(order=4)

    def test_invalid_lambdas(self):
        with pytest.raises(ValueError):
            NGramLM(order=2, lambdas=(0.9, 0.2))

    @given(st.lists(st.sampled_from(["a", "b", "c"]), max_size=5))
    def test_probability_in_unit_interval(self, context):
        lm = NGramLM().fit(CORPUS)
        assert 0.0 < lm.probability("car", tuple(context)) <= 1.0


class TestInterpolatedLM:
    def test_domain_weight_shifts_mass(self):
        general = NGramLM().fit([["the", "weather", "is", "nice"]])
        domain = NGramLM().fit([["book", "a", "car"]])
        high_domain = InterpolatedLM([(domain, 0.9), (general, 0.1)])
        low_domain = InterpolatedLM([(domain, 0.1), (general, 0.9)])
        assert high_domain.probability("car", ("a",)) > low_domain.probability(
            "car", ("a",)
        )

    def test_weights_must_sum_to_one(self):
        lm = NGramLM().fit(CORPUS)
        with pytest.raises(ValueError):
            InterpolatedLM([(lm, 0.5), (lm, 0.2)])

    def test_empty_components_rejected(self):
        with pytest.raises(ValueError):
            InterpolatedLM([])

    def test_build_interpolated_lm_accepts_strings(self):
        lm = build_interpolated_lm(
            ["the weather is nice"], ["book a car now"]
        )
        assert "car" in lm.vocabulary
        assert lm.probability("car", ("a",)) > 0
