"""Tests for channel calibration and word-confidence decoding."""

import pytest

from repro.asr.acoustic import AcousticChannel, ChannelConfig
from repro.asr.calibrate import (
    WERTargets,
    _apply_sigma,
    calibrate_channel,
    measure_wer,
)
from repro.asr.decoder import Decoder
from repro.asr.lm import NGramLM
from repro.asr.system import ASRSystem
from repro.asr.vocabulary import NAME_CLASS, NUMBER_CLASS


@pytest.fixture(scope="module")
def tiny_sentences():
    return [
        "i want to book a car for john smith",
        "the rate is forty dollars per day",
        "my number is five five five eight six seven",
        "mary walker wants a full size in boston",
        "please confirm the reservation for seven days",
    ] * 3


class TestMeasureWer:
    def test_reproducible_measurement(self, tiny_sentences):
        system = ASRSystem.build_default()
        a = measure_wer(system, tiny_sentences, reset_seed=5)
        b = measure_wer(system, tiny_sentences, reset_seed=5)
        assert a.wer() == b.wer()
        assert a.wer(NAME_CLASS) == b.wer(NAME_CLASS)

    def test_different_seeds_differ(self, tiny_sentences):
        system = ASRSystem.build_default()
        a = measure_wer(system, tiny_sentences, reset_seed=5)
        b = measure_wer(system, tiny_sentences, reset_seed=6)
        assert a.wer() != b.wer()


class TestApplySigma:
    def test_each_class_routed(self):
        system = ASRSystem.build_default()
        _apply_sigma(system, NAME_CLASS, 1.23)
        assert system.channel.config.sigma_name == pytest.approx(1.23)
        _apply_sigma(system, NUMBER_CLASS, 2.34)
        assert system.channel.config.sigma_number == pytest.approx(2.34)
        _apply_sigma(system, "overall", 3.45)
        assert system.channel.config.sigma_general == pytest.approx(3.45)

    def test_unknown_class_rejected(self):
        system = ASRSystem.build_default()
        with pytest.raises(ValueError):
            _apply_sigma(system, "martian", 1.0)


class TestCalibrateChannel:
    def test_sigma_monotone_in_wer(self, tiny_sentences):
        """More score noise means more errors — the property the
        bisection search relies on."""
        system = ASRSystem.build_default()
        _apply_sigma(system, "overall", 0.5)
        low = measure_wer(system, tiny_sentences).wer()
        _apply_sigma(system, "overall", 5.0)
        high = measure_wer(system, tiny_sentences).wer()
        assert high > low

    def test_calibration_moves_toward_targets(self, tiny_sentences):
        system = ASRSystem.build_default(
            channel_config=ChannelConfig(
                sigma_general=0.3, sigma_name=0.3, sigma_number=0.3
            )
        )
        before = measure_wer(system, tiny_sentences).wer()
        targets = WERTargets(overall=0.40, names=0.60, numbers=0.40)
        after = calibrate_channel(system, tiny_sentences, targets=targets)
        # Started nearly clean; calibration must push WER up toward 40%.
        assert before < 0.2
        assert after.wer() == pytest.approx(0.40, abs=0.12)


class TestConfidenceDecoding:
    @pytest.fixture(scope="class")
    def setup(self):
        from repro.asr.vocabulary import Vocabulary

        vocabulary = Vocabulary(
            ["book", "a", "car", "smith", "smyth", "john", "jon", "the"]
        )
        lm = NGramLM().fit([["book", "a", "car"], ["john", "smith"]])
        return vocabulary, lm

    def test_posteriors_sum_to_one(self, setup):
        vocabulary, lm = setup
        channel = AcousticChannel(vocabulary)
        network = channel.encode("book a car".split())
        decoder = Decoder(lm)
        for posterior in decoder.slot_posteriors(network):
            assert sum(posterior.values()) == pytest.approx(1.0)

    def test_clean_slot_is_confident(self, setup):
        vocabulary, lm = setup
        channel = AcousticChannel(
            vocabulary,
            ChannelConfig(
                sigma_general=0.0,
                sigma_name=0.0,
                sigma_number=0.0,
                deletion_rate=0.0,
                insertion_rate=0.0,
                extra_name_candidates=0,
            ),
        )
        network = channel.encode(["car"])
        decoder = Decoder(lm, lm_weight=0.2)
        scored = decoder.decode_with_confidence(network)
        assert scored[0][0] == "car"
        assert scored[0][1] > 0.5

    def test_truth_mass_drops_under_noise(self, setup):
        vocabulary, lm = setup
        clean = AcousticChannel(
            vocabulary,
            ChannelConfig(
                sigma_general=0.0, sigma_name=0.0, sigma_number=0.0,
                deletion_rate=0.0, insertion_rate=0.0,
                extra_name_candidates=0,
            ),
        )
        noisy = AcousticChannel(
            vocabulary,
            ChannelConfig(
                sigma_general=4.0, sigma_name=4.0, sigma_number=4.0,
                deletion_rate=0.0, insertion_rate=0.0,
            ),
        )
        decoder = Decoder(lm, lm_weight=0.2)
        clean_truth_mass = decoder.slot_posteriors(
            clean.encode(["smith"])
        )[0]["smith"]
        # Under noise, the posterior mass on the *truly spoken* word
        # drops on average (single draws can spike either way).
        noisy.reset(3)
        noisy_truth_mass = [
            decoder.slot_posteriors(noisy.encode(["smith"]))[0].get(
                "smith", 0.0
            )
            for _ in range(25)
        ]
        assert clean_truth_mass > sum(noisy_truth_mass) / len(
            noisy_truth_mass
        )

    def test_confidence_alignment_with_words(self, setup):
        vocabulary, lm = setup
        channel = AcousticChannel(vocabulary)
        channel.reset(9)
        network = channel.encode("book a car john smith".split())
        decoder = Decoder(lm)
        words = decoder.decode(network)
        scored = decoder.decode_with_confidence(network)
        assert [word for word, _ in scored] == words
        for _, confidence in scored:
            assert 0.0 <= confidence <= 1.0


class TestNotesChannel:
    def test_notes_channel_expands_shorthand(self):
        from repro.cleaning.pipeline import CleaningPipeline

        pipeline = CleaningPipeline(spell_correct=False)
        result = pipeline.clean(
            "teh cust inf tht he needs a full size resv done",
            channel="notes",
        )
        assert not result.discarded
        assert "customer" in result.text
        assert "informed" in result.text
        assert "reservation" in result.text
