"""StreamConsumer: delivery semantics, backpressure, crash/resume.

The crash/resume test is the subsystem's acceptance bar: killing the
consumer at *any* batch boundary (including immediately after a
checkpoint write) and resuming from the last checkpoint must yield a
main index, window state and funnel counters bit-identical to an
uninterrupted run.  Every consumer under test is built from scratch —
fresh documents from a locally seeded RNG, fresh stages, fresh window —
so state can only flow through the stream and the checkpoint file.
"""

import random

import pytest

from repro.engine import Document, FunctionStage
from repro.mining.stage import ConceptIndexStage
from repro.stream import (
    AssocSpec,
    Checkpointer,
    MemorySource,
    StreamConsumer,
    WindowedAnalytics,
    index_to_state,
)

CITIES = ["seattle", "boston", "denver"]
CARS = ["suv", "compact", "luxury"]

N_DOCS = 61  # not a multiple of batch_docs: exercises a ragged tail
BATCH_DOCS = 7
CHECKPOINT_INTERVAL = 2


class Crash(RuntimeError):
    """Simulated consumer death at a failpoint."""


def _make_pairs(n=N_DOCS, seed=5):
    """Deterministic (timestamp, document) arrivals; fresh each call."""
    rng = random.Random(seed)
    pairs = []
    for i in range(n):
        fields = {
            "city": rng.choice(CITIES),
            "car": rng.choice(CARS),
        }
        document = Document(
            doc_id=i, channel="test", text=f"call {i}",
            artifacts={"index_fields": fields},
        )
        pairs.append((i // 9, document))
    return pairs


def _filter(document):
    """Drop a deterministic subset to exercise funnel accounting."""
    if document.doc_id % 13 == 9:
        document.discard("filter", "synthetic noise")


def _build(checkpoint_path=None, crash_on=None, crash_at=None):
    """A fresh consumer over a freshly generated stream.

    ``crash_on``/``crash_at``: raise :class:`Crash` on the
    ``crash_at``-th occurrence of the named failpoint event.
    """
    seen = {"count": 0}

    def failpoint(event):
        if event == crash_on:
            seen["count"] += 1
            if seen["count"] >= crash_at:
                raise Crash(f"{event} #{seen['count']}")

    return StreamConsumer(
        MemorySource(_make_pairs()),
        [
            FunctionStage("filter", _filter, pure=True),
            ConceptIndexStage(on_duplicate="replace"),
        ],
        window=WindowedAnalytics(
            3, assoc_specs=[AssocSpec(("field", "city"), ("field", "car"))]
        ),
        checkpointer=(
            Checkpointer(checkpoint_path) if checkpoint_path else None
        ),
        batch_docs=BATCH_DOCS,
        checkpoint_interval=CHECKPOINT_INTERVAL,
        failpoint=failpoint if crash_on else None,
    )


def _assert_same_final_state(resumed, reference):
    """Bit-identical index, window and funnel counters."""
    assert index_to_state(resumed.index) == index_to_state(
        reference.index
    )
    assert resumed.window.to_state() == reference.window.to_state()
    assert resumed.committed_offset == reference.committed_offset
    assert resumed.report.processed == reference.report.processed
    assert resumed.report.discarded == reference.report.discarded
    assert resumed.report.upserts == reference.report.upserts
    assert resumed.report.batches == reference.report.batches
    table = resumed.window.assoc_snapshot(0)
    expected = reference.window.assoc_snapshot(0)
    assert table.cells() == expected.cells()


class TestCrashResume:
    @pytest.mark.parametrize("crash_at", [1, 2, 4, 7, 9])
    def test_crash_after_commit_resumes_bit_identical(
        self, tmp_path, crash_at
    ):
        reference = _build()
        reference.run()

        crashed = _build(tmp_path / "ck.json", "batch-committed",
                         crash_at)
        with pytest.raises(Crash):
            crashed.run()

        resumed = _build(tmp_path / "ck.json")
        restored = resumed.restore()
        # The failpoint fires after the commit but before the interval
        # checkpoint, so the first checkpoint lands only once a batch
        # *beyond* the interval has committed; before that the consumer
        # must simply start over.
        assert restored == (crash_at > CHECKPOINT_INTERVAL)
        assert resumed.report.restored == restored
        resumed.run()
        _assert_same_final_state(resumed, reference)

    @pytest.mark.parametrize("crash_at", [1, 3])
    def test_crash_right_after_checkpoint_write(self, tmp_path, crash_at):
        """Dying with the checkpoint freshly on disk must not
        double-count the batches it covers."""
        reference = _build()
        reference.run()

        crashed = _build(tmp_path / "ck.json", "checkpoint-written",
                         crash_at)
        with pytest.raises(Crash):
            crashed.run()

        resumed = _build(tmp_path / "ck.json")
        assert resumed.restore()
        resumed.run()
        _assert_same_final_state(resumed, reference)

    def test_double_crash_then_resume(self, tmp_path):
        """A resumed consumer can itself crash and be resumed again."""
        reference = _build()
        reference.run()

        first = _build(tmp_path / "ck.json", "batch-committed", 5)
        with pytest.raises(Crash):
            first.run()

        second = _build(tmp_path / "ck.json", "batch-committed", 2)
        assert second.restore()
        with pytest.raises(Crash):
            second.run()

        third = _build(tmp_path / "ck.json")
        assert third.restore()
        third.run()
        _assert_same_final_state(third, reference)


class TestDeliverySemantics:
    def test_seek_back_redelivery_is_skipped(self):
        reference = _build()
        reference.run()

        consumer = _build()
        consumer.run(max_batches=3, checkpoint_at_end=False)
        # The source replays everything from the start (at-least-once
        # delivery): already-committed offsets must be skipped, not
        # re-counted.
        consumer.source.seek(0)
        consumer.run()
        assert consumer.report.skipped > 0
        assert consumer.report.processed == reference.report.processed
        assert index_to_state(consumer.index) == index_to_state(
            reference.index
        )
        assert consumer.window.to_state() == reference.window.to_state()

    def test_duplicate_doc_id_at_fresh_offset_upserts(self):
        source = MemorySource()
        source.append(
            Document(doc_id=0, channel="test", text="v1",
                     artifacts={"index_fields": {"city": "boston"}}),
            timestamp=0,
        )
        source.append(
            Document(doc_id=0, channel="test", text="v2",
                     artifacts={"index_fields": {"city": "denver"}}),
            timestamp=1,
        )
        consumer = StreamConsumer(
            source,
            [ConceptIndexStage(on_duplicate="replace")],
            window=WindowedAnalytics(4),
            batch_docs=1,
        )
        consumer.run()
        assert consumer.report.upserts == 1
        assert len(consumer.index) == 1
        assert consumer.index.values_of_dimension(("field", "city")) == [
            "denver"
        ]
        assert len(consumer.window) == 1

    def test_record_timestamp_becomes_document_timestamp(self):
        source = MemorySource()
        source.append(
            Document(doc_id=0, channel="test", text="x",
                     artifacts={"index_fields": {"city": "boston"}}),
            timestamp=42,
        )
        consumer = StreamConsumer(
            source, [ConceptIndexStage(on_duplicate="replace")],
            batch_docs=1,
        )
        consumer.run()
        assert consumer.index.timestamp_of(0) == 42

    def test_live_appends_between_runs(self):
        source = MemorySource(_make_pairs(10))
        consumer = StreamConsumer(
            source,
            [
                FunctionStage("filter", _filter, pure=True),
                ConceptIndexStage(on_duplicate="replace"),
            ],
            batch_docs=4,
        )
        consumer.run()
        assert consumer.report.processed + consumer.report.discarded == 10
        source.append(
            Document(doc_id=101, channel="test", text="late",
                     artifacts={"index_fields": {"city": "miami"}}),
            timestamp=9,
        )
        assert consumer.step()
        assert 101 in consumer.index


class TestBackpressure:
    def test_prefetch_never_exceeds_queue_capacity(self):
        consumer = _build()
        capacity = consumer.queue_capacity * consumer.batch_docs
        while consumer.step():
            outstanding = (
                consumer.source.position
                - (consumer.committed_offset + 1)
            )
            assert 0 <= outstanding <= capacity


class TestConstruction:
    def test_requires_an_index_stage(self):
        with pytest.raises(ValueError, match="no ConceptIndexStage"):
            StreamConsumer(
                MemorySource(),
                [FunctionStage("filter", _filter, pure=True)],
            )

    def test_rejects_raising_index_stage(self):
        with pytest.raises(ValueError, match="at-least-once"):
            StreamConsumer(
                MemorySource(), [ConceptIndexStage(on_duplicate="raise")]
            )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"batch_docs": 0},
            {"queue_capacity": 0},
            {"checkpoint_interval": 0},
        ],
    )
    def test_rejects_degenerate_tuning(self, kwargs):
        with pytest.raises(ValueError):
            StreamConsumer(
                MemorySource(),
                [ConceptIndexStage(on_duplicate="replace")],
                **kwargs,
            )

    def test_checkpoint_requires_checkpointer(self):
        consumer = StreamConsumer(
            MemorySource(), [ConceptIndexStage(on_duplicate="replace")]
        )
        with pytest.raises(RuntimeError, match="no checkpointer"):
            consumer.checkpoint()
        with pytest.raises(RuntimeError, match="no checkpointer"):
            consumer.restore()

    def test_restore_without_checkpoint_file(self, tmp_path):
        consumer = _build(tmp_path / "never-written.json")
        assert consumer.restore() is False
        assert consumer.report.restored is False

    def test_restore_rejects_windowless_checkpoint(self, tmp_path):
        plain = StreamConsumer(
            MemorySource(_make_pairs(10)),
            [ConceptIndexStage(on_duplicate="replace")],
            checkpointer=Checkpointer(tmp_path / "ck.json"),
            batch_docs=4,
        )
        plain.run()
        windowed = _build(tmp_path / "ck.json")
        with pytest.raises(ValueError, match="no window state"):
            windowed.restore()
