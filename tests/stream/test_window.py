"""WindowedAnalytics: delta-maintained snapshots == batch mining.

The central claim of the streaming subsystem: after any sequence of
ingests (including upserts, late arrivals and evictions), every
snapshot is *bit-identical* to running the batch mining function over
an index holding exactly the window's documents.  The expected window
membership is computed here independently (last-write-wins per doc_id,
buckets within ``[max - W + 1, max]``), so the test does not trust the
window's own bookkeeping.
"""

import random

import pytest

from repro.mining.assoc2d import associate
from repro.mining.index import ConceptIndex, concept_key, field_key
from repro.mining.relfreq import relative_frequency
from repro.mining.trends import emerging_concepts, trend_series
from repro.stream import AssocSpec, RelFreqSpec, WindowedAnalytics

CITIES = ["seattle", "boston", "denver", "miami"]
CARS = ["suv", "compact", "luxury"]
TOPICS = ["billing", "coverage", "roaming"]

WINDOW = 3

ASSOC = AssocSpec(("field", "city"), ("field", "car"))
RELFREQ = RelFreqSpec(
    (field_key("car", "suv"),), ("field", "city"), min_focus_count=1
)


def _keys(rng):
    keys = {
        field_key("city", rng.choice(CITIES)),
        field_key("car", rng.choice(CARS)),
    }
    if rng.random() < 0.7:
        keys.add(concept_key("topic", rng.choice(TOPICS)))
    return keys


def _deliveries(seed, n=150):
    """(doc_id, keys, timestamp) with upserts and late arrivals."""
    rng = random.Random(seed)
    out = []
    for i in range(n):
        timestamp = i // 12
        if rng.random() < 0.1 and i > 10:
            # Re-deliver an earlier document with fresh keys (upsert).
            doc_id = rng.randrange(max(1, i - 20), i)
        else:
            doc_id = i
        if rng.random() < 0.08:
            timestamp = max(0, timestamp - rng.randrange(1, 6))  # late
        out.append((doc_id, _keys(rng), timestamp))
    return out


def _expected_window(deliveries, window_buckets):
    """Independent window model: last write wins, floor filtering."""
    live = {}
    max_bucket = None
    for doc_id, keys, timestamp in deliveries:
        floor = (
            None if max_bucket is None
            else max_bucket - window_buckets + 1
        )
        if floor is not None and timestamp < floor:
            continue  # late: dropped
        live[doc_id] = (keys, timestamp)
        if max_bucket is None or timestamp > max_bucket:
            max_bucket = timestamp
    if max_bucket is None:
        return {}
    floor = max_bucket - window_buckets + 1
    return {
        doc_id: (keys, timestamp)
        for doc_id, (keys, timestamp) in live.items()
        if timestamp >= floor
    }


def _batch_index(expected):
    index = ConceptIndex()
    for doc_id, (keys, timestamp) in expected.items():
        index.add_keys(doc_id, keys, timestamp=timestamp)
    return index


def _feed(deliveries):
    window = WindowedAnalytics(
        WINDOW, assoc_specs=[ASSOC], relfreq_specs=[RELFREQ]
    )
    for doc_id, keys, timestamp in deliveries:
        window.ingest(doc_id, keys, timestamp)
    return window


def _assert_tables_identical(actual, expected):
    assert actual.row_values == expected.row_values
    assert actual.col_values == expected.col_values
    # AssociationCell is a frozen dataclass: == is exact, including
    # the interval-bounded strength floats (bit-identical claim).
    assert actual.cells() == expected.cells()


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
class TestBatchEquivalence:
    def test_membership_matches_independent_model(self, seed):
        deliveries = _deliveries(seed)
        window = _feed(deliveries)
        expected = _expected_window(deliveries, WINDOW)
        assert sorted(window.index.document_ids) == sorted(expected)
        for doc_id, (keys, timestamp) in expected.items():
            assert window.index.keys_of(doc_id) == set(keys)
            assert window.index.timestamp_of(doc_id) == timestamp

    def test_assoc_snapshot_bit_identical(self, seed):
        deliveries = _deliveries(seed)
        window = _feed(deliveries)
        batch = _batch_index(_expected_window(deliveries, WINDOW))
        _assert_tables_identical(
            window.assoc_snapshot(0),
            associate(batch, ASSOC.row_dimension, ASSOC.col_dimension),
        )

    def test_relfreq_snapshot_bit_identical(self, seed):
        deliveries = _deliveries(seed)
        window = _feed(deliveries)
        batch = _batch_index(_expected_window(deliveries, WINDOW))
        assert window.relfreq_snapshot(0) == relative_frequency(
            batch, RELFREQ.focus_keys, RELFREQ.candidate_dimension,
            min_focus_count=RELFREQ.min_focus_count,
        )

    def test_trend_snapshots_bit_identical(self, seed):
        deliveries = _deliveries(seed)
        window = _feed(deliveries)
        batch = _batch_index(_expected_window(deliveries, WINDOW))
        for dimension in (
            ("field", "city"), ("field", "car"), ("concept", "topic")
        ):
            for key in batch.keys_of_dimension(dimension):
                assert window.trend_snapshot(key) == trend_series(
                    batch, key
                )
            assert window.emerging_snapshot(
                dimension, min_total=1
            ) == emerging_concepts(batch, dimension, min_total=1)

    def test_state_round_trip_preserves_everything(self, seed):
        deliveries = _deliveries(seed)
        window = _feed(deliveries)
        restored = WindowedAnalytics(
            WINDOW, assoc_specs=[ASSOC], relfreq_specs=[RELFREQ]
        ).restore_state(window.to_state())
        assert restored.to_state() == window.to_state()
        _assert_tables_identical(
            restored.assoc_snapshot(0), window.assoc_snapshot(0)
        )
        assert restored.relfreq_snapshot(0) == window.relfreq_snapshot(0)
        assert restored.late_dropped == window.late_dropped
        assert restored.evicted == window.evicted


class TestWindowMechanics:
    def test_eviction_drops_old_buckets(self):
        window = WindowedAnalytics(2)
        window.ingest(0, {field_key("a", "x")}, 0)
        window.ingest(1, {field_key("a", "x")}, 1)
        window.ingest(2, {field_key("a", "y")}, 3)
        assert sorted(window.index.document_ids) == [2]
        assert window.evicted == 2
        assert window.window_floor == 2
        # Dimension values of evicted docs disappear entirely.
        assert window.index.values_of_dimension(("field", "a")) == ["y"]

    def test_late_arrival_dropped_and_counted(self):
        window = WindowedAnalytics(2)
        window.ingest(0, {field_key("a", "x")}, 5)
        assert not window.ingest(1, {field_key("a", "y")}, 2)
        assert window.late_dropped == 1
        assert len(window) == 1

    def test_upsert_replaces_keys_and_timestamp(self):
        window = WindowedAnalytics(5)
        window.ingest(0, {field_key("a", "x")}, 1)
        window.ingest(0, {field_key("a", "y")}, 2)
        assert len(window) == 1
        assert window.index.keys_of(0) == {field_key("a", "y")}
        assert window.trend_snapshot(field_key("a", "x")) == []
        assert window.trend_snapshot(field_key("a", "y")) == [(2, 1)]

    def test_missing_timestamp_rejected(self):
        window = WindowedAnalytics(2)
        with pytest.raises(ValueError, match="no timestamp"):
            window.ingest(0, {field_key("a", "x")}, None)

    def test_restore_rejects_mismatched_window(self):
        window = WindowedAnalytics(2)
        window.ingest(0, {field_key("a", "x")}, 0)
        other = WindowedAnalytics(3)
        with pytest.raises(ValueError, match="configured for 3"):
            other.restore_state(window.to_state())

    def test_empty_window_snapshot_raises_like_batch(self):
        window = WindowedAnalytics(2, assoc_specs=[ASSOC])
        with pytest.raises(ValueError, match="empty window"):
            window.assoc_snapshot(0)
