"""Versioned sharded checkpoints: layouts, migration, crash/resume."""

import json
import random

import pytest

from repro.engine import Document, FunctionStage
from repro.mining.index import ConceptIndex, concept_key, field_key
from repro.mining.sharded import ShardedConceptIndex, shard_count_of
from repro.mining.stage import ConceptIndexStage
from repro.stream import (
    AssocSpec,
    Checkpointer,
    MemorySource,
    StreamConsumer,
    WindowedAnalytics,
    index_from_state,
    index_to_state,
)
from repro.stream.checkpoint import (
    CHECKPOINT_VERSION,
    SUPPORTED_CHECKPOINT_VERSIONS,
)

CITIES = ["seattle", "boston", "denver"]
CARS = ["suv", "compact", "luxury"]


def _fill(index):
    index.add_keys(
        0, {field_key("city", "boston"), concept_key("topic", "billing")},
        timestamp=3,
    )
    index.add_keys(1, {field_key("city", "denver")}, timestamp=None)
    index.add_keys(5, {concept_key("topic", "billing")}, timestamp=4)
    return index


class TestShardedIndexState:
    def test_sharded_state_records_layout(self):
        state = index_to_state(_fill(ShardedConceptIndex(3)))
        assert state["layout"] == {"kind": "sharded", "shards": 3}
        assert json.loads(json.dumps(state)) == state

    def test_single_state_has_no_layout_key(self):
        # Single-index snapshots stay byte-identical to version 1, so
        # old readers can still load them.
        state = index_to_state(_fill(ConceptIndex()))
        assert "layout" not in state

    def test_sharded_round_trip_is_lossless(self):
        index = _fill(ShardedConceptIndex(3))
        rebuilt = index_from_state(index_to_state(index))
        assert isinstance(rebuilt, ShardedConceptIndex)
        assert rebuilt.n_shards == 3
        assert index_to_state(rebuilt) == index_to_state(index)
        assert rebuilt.document_ids == index.document_ids

    def test_v1_state_restores_as_single_index(self):
        # A pre-sharding checkpoint payload carries no layout key.
        state = index_to_state(_fill(ConceptIndex()))
        rebuilt = index_from_state(state)
        assert isinstance(rebuilt, ConceptIndex)
        assert shard_count_of(rebuilt) == 0

    @pytest.mark.parametrize("shards", [0, 1, 2, 4])
    def test_shards_override_reshards_losslessly(self, shards):
        single = _fill(ConceptIndex())
        rebuilt = index_from_state(index_to_state(single), shards=shards)
        assert shard_count_of(rebuilt) == shards
        assert rebuilt.document_ids == single.document_ids
        for doc_id in single.document_ids:
            assert rebuilt.keys_of(doc_id) == single.keys_of(doc_id)
        key = concept_key("topic", "billing")
        assert rebuilt.documents_with(key) == single.documents_with(key)

    def test_override_can_flatten_a_sharded_snapshot(self):
        sharded = _fill(ShardedConceptIndex(4))
        rebuilt = index_from_state(index_to_state(sharded), shards=0)
        assert isinstance(rebuilt, ConceptIndex)
        assert rebuilt.document_ids == sharded.document_ids


class TestVersioning:
    def test_current_version_is_three_and_old_still_read(self):
        assert CHECKPOINT_VERSION == 3
        assert SUPPORTED_CHECKPOINT_VERSIONS == (1, 2, 3)

    def test_v1_payload_loads(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text(json.dumps({"version": 1, "offset": 12}))
        assert Checkpointer(path).load()["offset"] == 12

    def test_unknown_version_rejected(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text(json.dumps({"version": 99, "offset": 0}))
        with pytest.raises(ValueError, match="format version 99"):
            Checkpointer(path).load()


def _make_pairs(n=53, seed=6):
    """Deterministic (timestamp, document) arrivals; fresh each call."""
    rng = random.Random(seed)
    pairs = []
    for i in range(n):
        fields = {
            "city": rng.choice(CITIES),
            "car": rng.choice(CARS),
        }
        document = Document(
            doc_id=i, channel="test", text=f"call {i}",
            artifacts={"index_fields": fields},
        )
        pairs.append((i // 9, document))
    return pairs


class Crash(RuntimeError):
    """Simulated consumer death at a failpoint."""


def _build(shards, checkpoint_path=None, crash_on=None, crash_at=None):
    """A fresh consumer with the requested index layout."""
    seen = {"count": 0}

    def failpoint(event):
        if event == crash_on:
            seen["count"] += 1
            if seen["count"] >= crash_at:
                raise Crash(f"{event} #{seen['count']}")

    return StreamConsumer(
        MemorySource(_make_pairs()),
        [ConceptIndexStage(on_duplicate="replace", shards=shards)],
        window=WindowedAnalytics(
            3,
            assoc_specs=[AssocSpec(("field", "city"), ("field", "car"))],
        ),
        checkpointer=(
            Checkpointer(checkpoint_path) if checkpoint_path else None
        ),
        batch_docs=7,
        checkpoint_interval=2,
        failpoint=failpoint if crash_on else None,
    )


class TestShardedConsumer:
    def test_sharded_run_checkpoints_its_layout(self, tmp_path):
        consumer = _build(3, tmp_path / "ck.json")
        consumer.run()
        saved = Checkpointer(tmp_path / "ck.json").load()
        assert saved["version"] == CHECKPOINT_VERSION
        assert saved["index"]["layout"]["shards"] == 3

    def test_crash_resume_bit_identical_with_shards(self, tmp_path):
        reference = _build(3)
        reference.run()

        crashed = _build(3, tmp_path / "ck.json", "batch-committed", 3)
        with pytest.raises(Crash):
            crashed.run()
        resumed = _build(3, tmp_path / "ck.json")
        assert resumed.restore()
        resumed.run()

        assert index_to_state(resumed.index) == index_to_state(
            reference.index
        )
        assert resumed.window.to_state() == reference.window.to_state()
        assert resumed.committed_offset == reference.committed_offset

    def test_window_snapshots_identical_across_layouts(self):
        single = _build(0)
        single.run()
        sharded = _build(4)
        sharded.run()
        assert sharded.window.to_state() == single.window.to_state()
        table = sharded.window.assoc_snapshot(0)
        expected = single.window.assoc_snapshot(0)
        assert table.cells() == expected.cells()

    def test_pre_sharding_checkpoint_restores_into_shards(
        self, tmp_path
    ):
        # A checkpoint written by a single-index (version 1 layout)
        # consumer restores into a consumer upgraded to shards: the
        # configured stage layout is authoritative.
        path = tmp_path / "ck.json"
        old = _build(0, path)
        old.run()
        payload = json.loads(path.read_text())
        assert "layout" not in payload["index"]
        payload["version"] = 1  # exactly what an old build wrote
        payload.pop("sha256", None)  # old builds carried no stamp
        path.write_text(json.dumps(payload))

        upgraded = _build(3, path)
        assert upgraded.restore()
        assert isinstance(upgraded.index, ShardedConceptIndex)
        assert upgraded.index.n_shards == 3
        upgraded.run()

        reference = _build(3)
        reference.run()
        state = index_to_state(upgraded.index)
        assert state == index_to_state(reference.index)
        assert state["layout"]["shards"] == 3
        assert upgraded.window.to_state() == reference.window.to_state()

    def test_sharded_checkpoint_restores_into_single(self, tmp_path):
        # And the downgrade direction: a sharded snapshot flattens
        # into a single-index consumer.
        path = tmp_path / "ck.json"
        _build(4, path).run()
        downgraded = _build(0, path)
        assert downgraded.restore()
        assert isinstance(downgraded.index, ConceptIndex)
        downgraded.run()
        reference = _build(0)
        reference.run()
        assert index_to_state(downgraded.index) == index_to_state(
            reference.index
        )
