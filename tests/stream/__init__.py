"""Tests for the incremental ingestion subsystem (repro.stream)."""
