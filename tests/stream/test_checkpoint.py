"""Checkpoint layer: index state round trips and atomic files."""

import json

import pytest

from repro.mining.index import ConceptIndex, concept_key, field_key
from repro.stream import Checkpointer, index_from_state, index_to_state
from repro.stream.checkpoint import CHECKPOINT_VERSION


def _populated_index(keep_documents=False):
    index = ConceptIndex(keep_documents=keep_documents)
    index.add_keys(
        0, {field_key("city", "boston"), concept_key("topic", "billing")},
        timestamp=3, text="first call" if keep_documents else None,
    )
    index.add_keys(
        1, {field_key("city", "denver")},
        timestamp=None, text="second call" if keep_documents else None,
    )
    return index


class TestIndexState:
    @pytest.mark.parametrize("keep_documents", [False, True])
    def test_round_trip_is_lossless(self, keep_documents):
        index = _populated_index(keep_documents)
        rebuilt = index_from_state(index_to_state(index))
        assert index_to_state(rebuilt) == index_to_state(index)
        assert rebuilt.document_ids == index.document_ids
        assert rebuilt.keeps_documents == keep_documents
        for doc_id in index.document_ids:
            assert rebuilt.keys_of(doc_id) == index.keys_of(doc_id)
            assert rebuilt.timestamp_of(doc_id) == index.timestamp_of(
                doc_id
            )
        if keep_documents:
            assert rebuilt.text_of(0) == "first call"

    def test_state_is_json_safe(self):
        state = index_to_state(_populated_index(keep_documents=True))
        assert json.loads(json.dumps(state)) == state


class TestCheckpointer:
    def test_save_load_round_trip(self, tmp_path):
        checkpointer = Checkpointer(tmp_path / "ck.json")
        checkpointer.save({"offset": 7, "payload": [1, 2]})
        loaded = checkpointer.load()
        assert loaded["offset"] == 7
        assert loaded["payload"] == [1, 2]
        assert loaded["version"] == CHECKPOINT_VERSION

    def test_load_returns_none_when_missing(self, tmp_path):
        assert Checkpointer(tmp_path / "absent.json").load() is None

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text(json.dumps({"version": 99, "offset": 0}))
        with pytest.raises(ValueError, match="format version 99"):
            Checkpointer(path).load()

    def test_save_is_atomic_over_previous_checkpoint(self, tmp_path):
        path = tmp_path / "ck.json"
        checkpointer = Checkpointer(path)
        checkpointer.save({"offset": 1})
        # Simulate a crash mid-write of the *next* checkpoint: a torn
        # temp file must never shadow the last complete checkpoint.
        (tmp_path / "ck.json.tmp").write_text('{"offset": 2, "ver')
        assert checkpointer.load()["offset"] == 1
        checkpointer.save({"offset": 3})
        assert checkpointer.load()["offset"] == 3
        assert not (tmp_path / "ck.json.tmp").exists()

    def test_exists_and_clear(self, tmp_path):
        checkpointer = Checkpointer(tmp_path / "ck.json")
        assert not checkpointer.exists()
        checkpointer.save({"offset": 0})
        assert checkpointer.exists()
        checkpointer.clear()
        assert not checkpointer.exists()
        assert checkpointer.load() is None
        checkpointer.clear()  # idempotent on a missing file
