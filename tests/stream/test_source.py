"""Stream sources: offsets, polling, seeking, replay logs."""

import pytest

from repro.engine import Document
from repro.stream import (
    MemorySource,
    ReplayLogSource,
    write_replay_log,
)


def _doc(i, **artifacts):
    return Document(doc_id=i, channel="test", text=f"text {i}",
                    artifacts=artifacts)


class TestMemorySource:
    def test_offsets_are_dense_and_monotonic(self):
        source = MemorySource((i % 3, _doc(i)) for i in range(10))
        seen = []
        while True:
            batch = source.poll(3)
            if not batch:
                break
            seen.extend(record.offset for record in batch)
        assert seen == list(range(10))

    def test_poll_respects_max_records(self):
        source = MemorySource((0, _doc(i)) for i in range(7))
        assert len(source.poll(4)) == 4
        assert len(source.poll(4)) == 3
        assert source.poll(4) == []

    def test_seek_rewinds_for_redelivery(self):
        source = MemorySource((0, _doc(i)) for i in range(5))
        first = source.poll(5)
        source.seek(2)
        again = source.poll(5)
        assert [r.offset for r in again] == [2, 3, 4]
        assert again[0].document is first[2].document

    def test_append_after_drain_models_live_feed(self):
        source = MemorySource()
        assert source.poll(2) == []
        offset = source.append(_doc(0), timestamp=4)
        assert offset == 0
        [record] = source.poll(2)
        assert record.timestamp == 4

    def test_records_carry_timestamps(self):
        source = MemorySource([(9, _doc(0)), (11, _doc(1))])
        batch = source.poll(2)
        assert [r.timestamp for r in batch] == [9, 11]

    def test_negative_seek_rejected(self):
        source = MemorySource()
        with pytest.raises(ValueError):
            source.seek(-1)


class TestReplayLog:
    def test_round_trip_preserves_documents(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        pairs = [
            (i % 2, _doc(i, index_fields={"k": f"v{i}"}))
            for i in range(6)
        ]
        write_replay_log(path, pairs)
        source = ReplayLogSource(path)
        assert len(source) == 6
        batch = source.poll(10)
        assert [r.offset for r in batch] == list(range(6))
        assert [r.timestamp for r in batch] == [i % 2 for i in range(6)]
        assert batch[3].document.doc_id == 3
        assert batch[3].document.text == "text 3"
        assert batch[3].document.artifacts == {
            "index_fields": {"k": "v3"}
        }

    def test_non_dense_log_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        write_replay_log(path, [(0, _doc(0)), (0, _doc(1))])
        lines = path.read_text().splitlines()
        path.write_text(lines[1] + "\n")  # starts at offset 1: gap
        with pytest.raises(ValueError, match="expected offset 0"):
            ReplayLogSource(path)

    def test_unserialisable_artifacts_rejected(self, tmp_path):
        document = _doc(0, transcript=object())
        with pytest.raises(ValueError, match="not JSON-serialisable"):
            write_replay_log(tmp_path / "x.jsonl", [(0, document)])

    def test_seek_supported(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        write_replay_log(path, [(0, _doc(i)) for i in range(4)])
        source = ReplayLogSource(path)
        source.poll(4)
        source.seek(1)
        assert [r.offset for r in source.poll(10)] == [1, 2, 3]
