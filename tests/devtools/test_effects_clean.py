"""The gate: the repository's own stage graph must verify pure.

Companion to ``test_lint_clean.py``: any change that makes a declared-
pure stage provably racy or non-deterministic — or leaves a stale
``effect-*`` suppression behind — fails the tier-1 suite, not just CI.
"""

from pathlib import Path

from repro.devtools.effectsrunner import effects_paths
from repro.devtools.runner import lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC_PACKAGE = REPO_ROOT / "src" / "repro"


class TestSourceTreeVerifiesPure:
    def test_zero_effect_findings_over_src_repro(self):
        report, _ = effects_paths([SRC_PACKAGE])
        rendered = "\n".join(v.render() for v in report.violations)
        assert report.violations == [], f"effect findings:\n{rendered}"
        assert report.exit_code() == 0

    def test_the_stage_graph_was_actually_checked(self):
        # Guard against the gate passing vacuously: the engine's stage
        # protocol and the pipeline's concrete stages must be found.
        _, stage_reports = effects_paths([SRC_PACKAGE])
        names = {r.name for r in stage_reports}
        assert any(".engine." in name for name in names)
        assert len(stage_reports) >= 10

    def test_no_stage_is_mis_verdicted(self):
        # Every class-declared stage must verify ``consistent`` —
        # ``unverifiable`` here would mean the checker lost precision
        # over our own tree (a regression even without a finding).
        _, stage_reports = effects_paths([SRC_PACKAGE])
        class_verdicts = {
            r.name: r.verdict for r in stage_reports if r.kind == "class"
        }
        bad = {
            name: verdict
            for name, verdict in class_verdicts.items()
            if verdict != "consistent"
        }
        assert bad == {}, f"non-consistent stage verdicts: {bad}"

    def test_lint_with_effects_stays_clean(self):
        report = lint_paths([SRC_PACKAGE], effects=True)
        rendered = "\n".join(v.render() for v in report.violations)
        assert report.violations == [], f"findings:\n{rendered}"
        assert report.exit_code() == 0
