"""benchmarks/trajectory.py: merge, compare and gate semantics."""

import importlib.util
import json
import pathlib

import pytest

_TRAJECTORY_PATH = (
    pathlib.Path(__file__).resolve().parents[2]
    / "benchmarks" / "trajectory.py"
)
_spec = importlib.util.spec_from_file_location(
    "bench_trajectory", _TRAJECTORY_PATH
)
trajectory = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(trajectory)


def _write(path, payload):
    path.write_text(json.dumps(payload))


@pytest.fixture()
def artifacts(tmp_path):
    """Two bench artifacts plus a stale trajectory to be ignored."""
    _write(tmp_path / "BENCH_linking.json",
           {"bench": "linking", "precision": 0.95, "documents": 100})
    _write(tmp_path / "BENCH_asr.json",
           {"bench": "asr", "overall_wer": 0.4})
    _write(tmp_path / "BENCH_trajectory.json", {"benches": {"old": {}}})
    return tmp_path


class TestMerge:
    def test_merges_by_name_and_skips_itself(self, artifacts):
        out = artifacts / "BENCH_trajectory.json"
        document = trajectory.merge_artifacts(str(artifacts), str(out))
        assert sorted(document["benches"]) == ["asr", "linking"]
        assert document["benches"]["linking"]["precision"] == (
            pytest.approx(0.95)
        )
        assert json.loads(out.read_text()) == document


class TestLookup:
    def test_walks_dotted_paths(self):
        document = {"benches": {"a": {"b": {"c": 3}}}}
        assert trajectory.lookup(document, "a.b.c") == 3
        assert trajectory.lookup(document, "a.b") == {"c": 3}

    def test_missing_segment_is_none(self):
        document = {"benches": {"a": {"b": 1}}}
        assert trajectory.lookup(document, "a.zzz") is None
        assert trajectory.lookup(document, "a.b.c") is None
        assert trajectory.lookup({}, "a") is None


class TestCompareMetric:
    def test_within_tolerance_is_ok(self):
        status, _ = trajectory.compare_metric(
            "m", {"value": 100, "tol_rel": 0.05,
                  "higher_is_better": True}, 97,
        )
        assert status == "ok"

    def test_bad_direction_beyond_tolerance_regresses(self):
        status, detail = trajectory.compare_metric(
            "m", {"value": 100, "tol_rel": 0.05,
                  "higher_is_better": True}, 90,
        )
        assert status == "regression"
        assert "-10.0%" in detail

    def test_good_direction_beyond_tolerance_improves(self):
        status, _ = trajectory.compare_metric(
            "m", {"value": 0.4, "tol_rel": 0.05,
                  "higher_is_better": False}, 0.3,
        )
        assert status == "improvement"

    def test_neutral_direction_fails_both_ways(self):
        spec = {"value": 100, "tol_rel": 0.01}
        assert trajectory.compare_metric("m", spec, 103)[0] == "regression"
        assert trajectory.compare_metric("m", spec, 97)[0] == "regression"
        assert trajectory.compare_metric("m", spec, 100)[0] == "ok"

    def test_missing_metric(self):
        status, _ = trajectory.compare_metric("m", {"value": 1}, None)
        assert status == "missing"

    def test_zero_baseline_uses_absolute_delta(self):
        status, _ = trajectory.compare_metric(
            "m", {"value": 0, "tol_rel": 0.0}, 2,
        )
        assert status == "regression"


class TestCompareAndGate:
    BASELINES = {
        "metrics": {
            "linking.precision": {
                "value": 0.95, "tol_rel": 0.02,
                "higher_is_better": True, "gate": True,
            },
            "asr.overall_wer": {
                "value": 0.5, "tol_rel": 0.05,
                "higher_is_better": False, "gate": True,
            },
            "linking.wall_s": {
                "value": 1.0, "tol_rel": 0.1,
                "higher_is_better": False, "gate": False,
            },
        }
    }

    def _document(self, precision=0.95, wer=0.5, wall=1.0):
        return {
            "benches": {
                "linking": {"precision": precision, "wall_s": wall},
                "asr": {"overall_wer": wer},
            }
        }

    def test_green_run_has_no_failures(self):
        failures, improvements, lines = trajectory.compare(
            self._document(), self.BASELINES
        )
        assert failures == []
        assert improvements == []
        assert len(lines) == 3

    def test_gated_regression_fails(self):
        failures, _, lines = trajectory.compare(
            self._document(precision=0.80), self.BASELINES
        )
        assert len(failures) == 1
        assert "linking.precision" in failures[0]
        assert any("REGRESSION" in line for line in lines)

    def test_non_gating_drift_reports_without_failing(self):
        failures, _, lines = trajectory.compare(
            self._document(wall=5.0), self.BASELINES
        )
        assert failures == []
        assert any("non-gating" in line for line in lines)

    def test_improvement_is_noted(self):
        failures, improvements, _ = trajectory.compare(
            self._document(wer=0.3), self.BASELINES
        )
        assert failures == []
        assert len(improvements) == 1
        assert "asr.overall_wer" in improvements[0]

    def test_main_gates_end_to_end(self, artifacts, capsys):
        baselines = artifacts / "baselines.json"
        _write(baselines, self.BASELINES)
        argv = [
            "gate", "--dir", str(artifacts),
            "--trajectory", str(artifacts / "BENCH_trajectory.json"),
            "--baselines", str(baselines),
        ]
        # The artifacts fixture has precision 0.95 / wer 0.4 and no
        # wall_s at all — wall_s is non-gating, so the run passes and
        # the dropped metric surfaces as non-gating drift.
        assert trajectory.main(argv) == 0
        out = capsys.readouterr().out
        assert "improvement" in out

        # Injecting a synthetic regression must flip the exit code.
        _write(artifacts / "BENCH_linking.json",
               {"bench": "linking", "precision": 0.5})
        assert trajectory.main(argv) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_summary_mirrors_to_github_step_summary(
        self, artifacts, tmp_path, monkeypatch, capsys
    ):
        baselines = artifacts / "baselines.json"
        _write(baselines, self.BASELINES)
        summary = tmp_path / "summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
        trajectory.main([
            "gate", "--dir", str(artifacts),
            "--trajectory", str(artifacts / "BENCH_trajectory.json"),
            "--baselines", str(baselines),
        ])
        capsys.readouterr()
        assert "Bench trajectory" in summary.read_text()
