"""The gate: the repository's own source tree must lint clean.

This is the test that turns ``bivoc lint`` from advice into a
contract: any change that introduces a layer violation, an import
cycle, an unseeded RNG stream, a stale paper citation or any other
rule breach fails the tier-1 suite, not just a CI side channel.
"""

from pathlib import Path

from repro.devtools.runner import lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC_PACKAGE = REPO_ROOT / "src" / "repro"


class TestSourceTreeIsClean:
    def test_full_lint_of_src_repro_is_clean(self):
        report = lint_paths([SRC_PACKAGE])
        rendered = "\n".join(v.render() for v in report.violations)
        assert report.violations == [], f"lint findings:\n{rendered}"
        assert report.files_scanned >= 80

    def test_layering_checks_actually_ran(self):
        # Guard against the gate silently skipping the graph checks:
        # the package root must have been recognised as a package.
        assert (SRC_PACKAGE / "__init__.py").exists()

    def test_exit_code_contract_for_ci(self):
        assert lint_paths([SRC_PACKAGE]).exit_code() == 0


class TestTestTreeHygiene:
    def test_test_suite_passes_its_applicable_rules(self):
        report = lint_paths(
            [REPO_ROOT / "tests"],
            select=[
                "no-float-eq-assert",
                "no-bare-except",
                "no-mutable-default-arg",
                "all-exports-exist",
            ],
            exclude=("fixtures", "__pycache__"),
        )
        rendered = "\n".join(v.render() for v in report.violations)
        assert report.violations == [], f"lint findings:\n{rendered}"

    def test_benchmarks_pass_hygiene_rules(self):
        report = lint_paths(
            [REPO_ROOT / "benchmarks"],
            select=["no-bare-except", "no-mutable-default-arg"],
        )
        rendered = "\n".join(v.render() for v in report.violations)
        assert report.violations == [], f"lint findings:\n{rendered}"
