"""Effect inference: direct effects, fixpoint propagation, witnesses."""

from repro.devtools.effects import (
    AMBIENT_OBS,
    IO,
    MUTATES_GLOBAL,
    MUTATES_PARAM,
    MUTATES_SELF,
    UNKNOWN,
    UNSEEDED_RNG,
    WALL_CLOCK,
    analyse_package,
)


def _analyse(make_package, source):
    return analyse_package(make_package({"a.py": source}))


class TestDirectEffects:
    def test_parameter_attribute_write(self, make_package):
        analysis = _analyse(make_package, '''\
            """a."""


            def annotate(doc):
                doc.label = "x"
            ''')
        assert analysis.effects_of("fx.a.annotate") == frozenset(
            {MUTATES_PARAM}
        )

    def test_self_attribute_write(self, make_package):
        analysis = _analyse(make_package, '''\
            """a."""


            class C:
                def remember(self, x):
                    self.last = x
            ''')
        assert analysis.effects_of("fx.a.C.remember") == frozenset(
            {MUTATES_SELF}
        )

    def test_global_statement_write(self, make_package):
        analysis = _analyse(make_package, '''\
            """a."""

            COUNT = 0


            def bump():
                global COUNT
                COUNT = COUNT + 1
            ''')
        assert analysis.effects_of("fx.a.bump") == frozenset(
            {MUTATES_GLOBAL}
        )

    def test_mutator_method_on_parameter(self, make_package):
        analysis = _analyse(make_package, '''\
            """a."""


            def push(items, x):
                items.append(x)
            ''')
        assert analysis.effects_of("fx.a.push") == frozenset(
            {MUTATES_PARAM}
        )

    def test_print_is_io(self, make_package):
        analysis = _analyse(make_package, '''\
            """a."""


            def shout(x):
                print(x)
            ''')
        assert analysis.effects_of("fx.a.shout") == frozenset({IO})

    def test_wall_clock_external(self, make_package):
        analysis = _analyse(make_package, '''\
            """a."""

            import time


            def stamp():
                return time.time()
            ''')
        assert analysis.effects_of("fx.a.stamp") == frozenset(
            {WALL_CLOCK}
        )

    def test_unseeded_rng_external(self, make_package):
        analysis = _analyse(make_package, '''\
            """a."""

            import random


            def draw():
                return random.random()
            ''')
        assert analysis.effects_of("fx.a.draw") == frozenset(
            {UNSEEDED_RNG}
        )

    def test_known_clean_external(self, make_package):
        analysis = _analyse(make_package, '''\
            """a."""

            import math


            def root(x):
                return math.sqrt(x)
            ''')
        assert analysis.effects_of("fx.a.root") == frozenset()

    def test_unknown_external_is_conservative(self, make_package):
        analysis = _analyse(make_package, '''\
            """a."""

            import frobnicator


            def call():
                return frobnicator.go()
            ''')
        assert UNKNOWN in analysis.effects_of("fx.a.call")

    def test_obs_method_heuristic(self, make_package):
        analysis = _analyse(make_package, '''\
            """a."""


            def timed(tracer, x):
                tracer.span("work")
                return x
            ''')
        assert analysis.effects_of("fx.a.timed") == frozenset(
            {AMBIENT_OBS}
        )

    def test_benign_methods_are_clean(self, make_package):
        analysis = _analyse(make_package, '''\
            """a."""


            def tokens(text):
                return text.lower().split()
            ''')
        assert analysis.effects_of("fx.a.tokens") == frozenset()

    def test_lambda_closure_mutation_is_shared_state(self, make_package):
        analysis = _analyse(make_package, '''\
            """a."""


            def build():
                acc = []
                return lambda d: acc.append(d)
            ''')
        assert analysis.effects_of("fx.a.build.<lambda#0>") == (
            frozenset({MUTATES_GLOBAL})
        )


class TestPropagation:
    def test_callee_effect_reaches_caller(self, make_package):
        analysis = _analyse(make_package, '''\
            """a."""


            def noisy(x):
                print(x)


            def caller(x):
                noisy(x)
            ''')
        assert IO in analysis.effects_of("fx.a.caller")

    def test_two_hop_chain_with_witnesses(self, make_package):
        analysis = _analyse(make_package, '''\
            """a."""

            import random


            def top(x):
                return middle(x)


            def middle(x):
                return bottom(x)


            def bottom(x):
                return x + random.random()
            ''')
        assert UNSEEDED_RNG in analysis.effects_of("fx.a.top")
        chain = analysis.witness_chain("fx.a.top", UNSEEDED_RNG)
        assert [q for q, _ in chain] == [
            "fx.a.top", "fx.a.middle", "fx.a.bottom",
        ]
        assert chain[-1][1].kind == "direct"
        assert "random.random" in chain[-1][1].detail

    def test_mutual_recursion_terminates(self, make_package):
        analysis = _analyse(make_package, '''\
            """a."""


            def ping(x):
                print(x)
                return pong(x)


            def pong(x):
                return ping(x)
            ''')
        assert IO in analysis.effects_of("fx.a.ping")
        assert IO in analysis.effects_of("fx.a.pong")

    def test_self_mutation_maps_through_self_call(self, make_package):
        analysis = _analyse(make_package, '''\
            """a."""


            class C:
                def _store(self, x):
                    self.value = x

                def go(self, x):
                    self._store(x)
            ''')
        assert MUTATES_SELF in analysis.effects_of("fx.a.C.go")

    def test_param_mutation_on_local_argument_drops(self, make_package):
        analysis = _analyse(make_package, '''\
            """a."""


            def push(items):
                items.append(1)


            def fresh():
                batch = []
                push(batch)
                return batch


            def forward(items):
                push(items)
            ''')
        # Mutating a caller-local list is invisible outside the caller.
        assert analysis.effects_of("fx.a.fresh") == frozenset()
        # Mutating a forwarded parameter is the caller's effect too.
        assert analysis.effects_of("fx.a.forward") == frozenset(
            {MUTATES_PARAM}
        )


class TestDeclaredOverrides:
    def test_annotation_pins_the_effect_set(self, make_package):
        analysis = _analyse(make_package, '''\
            """a."""

            import random


            def derive(seed):  # bivoc: effects[pure]
                return random.Random(seed)


            def caller(seed):
                return derive(seed)
            ''')
        assert analysis.effects_of("fx.a.derive") == frozenset()
        assert analysis.effects_of("fx.a.caller") == frozenset()

    def test_declared_effects_propagate(self, make_package):
        analysis = _analyse(make_package, '''\
            """a."""


            def emit(x):  # bivoc: effects[io]
                return x


            def caller(x):
                return emit(x)
            ''')
        assert analysis.effects_of("fx.a.emit") == frozenset({IO})
        assert IO in analysis.effects_of("fx.a.caller")
