"""Call-graph construction: symbol resolution, MRO, dispatch, lambdas."""

from repro.devtools.callgraph import (
    build_callgraph,
    parse_effects_annotation,
)


def _sites(graph, qualname):
    return graph.functions[qualname].calls


class TestAnnotationParsing:
    def test_effect_list(self):
        declared = parse_effects_annotation(
            "def f():  # bivoc: effects[io, ambient-obs]"
        )
        assert declared == frozenset({"io", "ambient-obs"})

    def test_pure_means_empty(self):
        assert parse_effects_annotation(
            "def f():  # bivoc: effects[pure]"
        ) == frozenset()

    def test_plain_line_is_none(self):
        assert parse_effects_annotation("def f():  # a comment") is None


class TestFunctionResolution:
    def test_same_module_call(self, make_package):
        graph = build_callgraph(make_package({
            "a.py": '''\
                """a."""


                def helper(x):
                    return x


                def caller(x):
                    return helper(x)
                ''',
        }))
        (site,) = _sites(graph, "fx.a.caller")
        assert site.targets == ("fx.a.helper",)
        assert not site.unresolved

    def test_cross_module_import(self, make_package):
        graph = build_callgraph(make_package({
            "a.py": '''\
                """a."""


                def helper(x):
                    return x
                ''',
            "b.py": '''\
                """b."""

                from fx.a import helper


                def caller(x):
                    return helper(x)
                ''',
        }))
        (site,) = _sites(graph, "fx.b.caller")
        assert site.targets == ("fx.a.helper",)

    def test_reexport_chain_through_init(self, make_package):
        graph = build_callgraph(make_package({
            "__init__.py": '"""pkg."""\n\nfrom fx.a import helper\n',
            "a.py": '''\
                """a."""


                def helper(x):
                    return x
                ''',
            "b.py": '''\
                """b."""

                from fx import helper


                def caller(x):
                    return helper(x)
                ''',
        }))
        (site,) = _sites(graph, "fx.b.caller")
        assert site.targets == ("fx.a.helper",)

    def test_external_call_keeps_dotted_name(self, make_package):
        graph = build_callgraph(make_package({
            "a.py": '''\
                """a."""

                import json


                def dump(x):
                    return json.dumps(x)
                ''',
        }))
        (site,) = _sites(graph, "fx.a.dump")
        assert site.external == "json.dumps"
        assert site.targets == ()

    def test_call_through_parameter_is_unresolved(self, make_package):
        graph = build_callgraph(make_package({
            "a.py": '''\
                """a."""


                def run(fn):
                    return fn()
                ''',
        }))
        (site,) = _sites(graph, "fx.a.run")
        assert site.unresolved
        assert site.receiver == ("param", "fn")


class TestMethodResolution:
    def test_mro_resolves_inherited_method(self, make_package):
        graph = build_callgraph(make_package({
            "a.py": '''\
                """a."""


                class Base:
                    def run(self, x):
                        return x


                class Child(Base):
                    pass
                ''',
        }))
        assert graph.resolve_method("fx.a.Child", "run") == "fx.a.Base.run"
        assert graph.mro("fx.a.Child") == ["fx.a.Child", "fx.a.Base"]

    def test_self_method_dispatch(self, make_package):
        graph = build_callgraph(make_package({
            "a.py": '''\
                """a."""


                class C:
                    def helper(self, x):
                        return x

                    def go(self, x):
                        return self.helper(x)
                ''',
        }))
        (site,) = _sites(graph, "fx.a.C.go")
        assert site.self_method
        assert site.targets == ("fx.a.C.helper",)

    def test_self_attr_method_uses_inferred_type(self, make_package):
        graph = build_callgraph(make_package({
            "a.py": '''\
                """a."""


                class Helper:
                    def run(self, x):
                        return x


                class Owner:
                    def __init__(self):
                        self.helper = Helper()

                    def go(self, x):
                        return self.helper.run(x)
                ''',
        }))
        sites = _sites(graph, "fx.a.Owner.go")
        (call,) = [s for s in sites if s.method == "run"]
        assert call.targets == ("fx.a.Helper.run",)
        assert not call.unresolved

    def test_parameter_branch_keeps_open_world(self, make_package):
        # ``self.x = given or Default()``: the resolved candidate is
        # kept, but the call stays unresolved (the parameter branch may
        # be anything).
        graph = build_callgraph(make_package({
            "a.py": '''\
                """a."""


                class Default:
                    def run(self, x):
                        return x


                class Owner:
                    def __init__(self, given=None):
                        self.x = given or Default()

                    def go(self, x):
                        return self.x.run(x)
                ''',
        }))
        sites = _sites(graph, "fx.a.Owner.go")
        (call,) = [s for s in sites if s.method == "run"]
        assert call.targets == ("fx.a.Default.run",)
        assert call.unresolved


class TestLambdas:
    def test_lambda_gets_synthetic_function(self, make_package):
        graph = build_callgraph(make_package({
            "a.py": '''\
                """a."""


                def build():
                    acc = []
                    fn = lambda d: acc.append(d)
                    return fn
                ''',
        }))
        info = graph.functions["fx.a.build.<lambda#0>"]
        assert info.params == ("d",)
        assert "acc" in info.enclosing_locals


class TestDeclaredEffects:
    def test_annotation_recorded_on_function_info(self, make_package):
        graph = build_callgraph(make_package({
            "a.py": '''\
                """a."""


                def reads():  # bivoc: effects[io]
                    return 1


                def clean():  # bivoc: effects[pure]
                    return 2


                def inferred():
                    return 3
                ''',
        }))
        assert graph.functions["fx.a.reads"].declared_effects == (
            frozenset({"io"})
        )
        assert graph.functions["fx.a.clean"].declared_effects == (
            frozenset()
        )
        assert graph.functions["fx.a.inferred"].declared_effects is None
