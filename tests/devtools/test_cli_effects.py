"""The ``bivoc effects`` subcommand end to end."""

import json
from pathlib import Path

from repro.cli import main

FXSTAGE = Path(__file__).parent / "fixtures" / "fxstage"


class TestEffectsCommand:
    def test_fixture_package_fails_with_rule_ids_in_json(self, capsys):
        code = main(["effects", str(FXSTAGE), "--format", "json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        rules = {v["rule"] for v in payload["violations"]}
        assert rules == {
            "effect-shared-state-race",
            "effect-pure-mismatch",
            "effect-missed-parallelism",
        }
        assert payload["summary"]["total"] == 4

    def test_advisories_do_not_gate_by_default(self, capsys, make_package):
        # --fail-on defaults to error: a warning-only report exits 0,
        # but tightening to --fail-on warning gates on the advisory.
        package = make_package({
            "a.py": '''\
                """a."""


                class Stage:
                    pure = False

                    def process(self, batch):
                        raise NotImplementedError


                class Shy(Stage):
                    pure = False

                    def process(self, batch):
                        return batch
                ''',
        })
        assert main(["effects", str(package)]) == 0
        capsys.readouterr()
        assert main([
            "effects", str(package), "--fail-on", "warning",
        ]) == 1
        capsys.readouterr()

    def test_text_format_lists_locations(self, capsys):
        code = main(["effects", str(FXSTAGE)])
        assert code == 1
        out = capsys.readouterr().out
        assert "stages.py:" in out
        assert "effect-shared-state-race" in out

    def test_explain_lists_verdicts(self, capsys):
        code = main(["effects", str(FXSTAGE), "--explain"])
        assert code == 1
        out = capsys.readouterr().out
        assert "stage purity verdicts:" in out
        assert "race" in out
        assert "fxstage.stages.SamplingStage" in out

    def test_default_path_is_src_repro_and_clean(self, capsys):
        code = main(["effects"])
        assert code == 0
        out = capsys.readouterr().out
        assert "clean" in out

    def test_non_package_path_is_usage_error(self, capsys):
        code = main(["effects", str(FXSTAGE / "stages.py")])
        assert code == 2
        assert "package" in capsys.readouterr().err

    def test_lint_effects_flag_runs_both_systems(self, capsys):
        code = main([
            "lint", str(FXSTAGE), "--effects", "--format", "json",
        ])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        rules = {v["rule"] for v in payload["violations"]}
        assert "effect-shared-state-race" in rules
