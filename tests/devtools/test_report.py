"""Report rendering (text/JSON) and exit-code semantics."""

import json
from pathlib import Path

import pytest

from repro.devtools.report import render_json, render_text
from repro.devtools.runner import LintReport, lint_paths
from repro.devtools.violations import Severity, Violation

FIXTURES = Path(__file__).parent / "fixtures"


def _report():
    return LintReport(
        violations=[
            Violation("a.py", 3, 0, "no-bare-except", "error", "bad"),
            Violation("b.py", 7, 4, "no-float-eq-assert", "warning", "meh"),
        ],
        files_scanned=2,
        suppressed=1,
    )


class TestTextReport:
    def test_one_line_per_finding_plus_summary(self):
        text = render_text(_report())
        lines = text.splitlines()
        assert lines[0] == "a.py:3:0: no-bare-except [error] bad"
        assert lines[1] == "b.py:7:4: no-float-eq-assert [warning] meh"
        assert "2 findings" in text
        assert "1 error" in text and "1 warning" in text
        assert "1 suppressed" in text

    def test_clean_report(self):
        text = render_text(LintReport(files_scanned=5))
        assert "clean: 5 files, 0 findings" in text


class TestJsonReport:
    def test_shape(self):
        payload = json.loads(render_json(_report()))
        assert [v["rule"] for v in payload["violations"]] == [
            "no-bare-except",
            "no-float-eq-assert",
        ]
        assert payload["violations"][0] == {
            "path": "a.py",
            "line": 3,
            "col": 0,
            "rule": "no-bare-except",
            "severity": "error",
            "message": "bad",
        }
        summary = payload["summary"]
        assert summary["files_scanned"] == 2
        assert summary["total"] == 2
        assert summary["suppressed"] == 1
        assert summary["by_severity"] == {"error": 1, "warning": 1}
        assert summary["by_rule"] == {
            "no-bare-except": 1,
            "no-float-eq-assert": 1,
        }

    def test_round_trips_from_real_run(self):
        report = lint_paths([FIXTURES / "bad_exports.py"])
        payload = json.loads(render_json(report))
        assert payload["summary"]["total"] == 1
        assert payload["violations"][0]["rule"] == "all-exports-exist"


class TestExitCode:
    def test_error_fails_at_any_threshold(self):
        report = LintReport(
            violations=[Violation("a.py", 1, 0, "r", "error", "m")]
        )
        assert report.exit_code(fail_on=Severity.ERROR) == 1
        assert report.exit_code(fail_on=Severity.WARNING) == 1

    def test_warning_only_fails_at_warning_threshold(self):
        report = LintReport(
            violations=[Violation("a.py", 1, 0, "r", "warning", "m")]
        )
        assert report.exit_code(fail_on=Severity.ERROR) == 0
        assert report.exit_code(fail_on=Severity.WARNING) == 1

    def test_clean_passes(self):
        assert LintReport().exit_code() == 0

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError):
            Severity.rank("fatal")


class TestRunnerValidation:
    def test_unknown_rule_id_rejected(self):
        with pytest.raises(ValueError, match="unknown rule id"):
            lint_paths([FIXTURES], select=["not-a-rule"])

    def test_select_restricts_rules(self):
        report = lint_paths(
            [FIXTURES / "mutable_default.py"],
            select=["no-bare-except"],
        )
        assert report.violations == []

    def test_ignore_drops_rules(self):
        report = lint_paths(
            [FIXTURES / "mutable_default.py"],
            ignore=["no-mutable-default-arg"],
        )
        assert report.violations == []

    def test_syntax_error_reported_not_raised(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def f(:\n")
        report = lint_paths([path])
        assert [v.rule_id for v in report.violations] == ["syntax-error"]
        assert report.exit_code() == 1

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            lint_paths([tmp_path / "nope.txt"])

    def test_exclude_drops_directories(self):
        report = lint_paths(
            [FIXTURES.parent], exclude=("fixtures", "__pycache__")
        )
        fixture_paths = {
            v.path for v in report.violations if "fixtures" in v.path
        }
        assert fixture_paths == set()
