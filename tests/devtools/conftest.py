"""Shared fixtures for the devtools suite."""

import textwrap

import pytest


@pytest.fixture
def make_package(tmp_path):
    """Materialise ``{relpath: source}`` as a package under ``tmp_path``.

    Sources are dedented; every directory gets an ``__init__.py`` unless
    the caller supplies one explicitly.  Returns the package root, ready
    for ``build_module_graph`` / ``build_callgraph`` / ``analyse_package``.
    """

    def _make(files, name="fx"):
        package = tmp_path / name
        package.mkdir(exist_ok=True)
        directories = {package}
        for relpath, source in files.items():
            path = package / relpath
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source))
            parent = path.parent
            while parent != package:
                directories.add(parent)
                parent = parent.parent
        for directory in directories:
            init = directory / "__init__.py"
            if not init.exists():
                init.write_text('"""pkg."""\n')
        return package

    return _make
