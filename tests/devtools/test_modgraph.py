"""Module-graph construction, cycle detection, layer enforcement."""

import textwrap

from repro.devtools.layering import (
    DEFAULT_CONTRACT,
    LayerContract,
    check_layering,
)
from repro.devtools.modgraph import build_module_graph


def _make_package(root, files):
    """Materialise ``{relpath: source}`` under ``root / 'repro'``."""
    package = root / "repro"
    package.mkdir(exist_ok=True)
    directories = {package}
    for relpath, source in files.items():
        path = package / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        parent = path.parent
        while parent != package:
            directories.add(parent)
            parent = parent.parent
    for directory in directories:
        init = directory / "__init__.py"
        if not init.exists():
            init.write_text('"""pkg."""\n')
    return package


class TestGraphConstruction:
    def test_modules_and_edges(self, tmp_path):
        package = _make_package(
            tmp_path,
            {
                "util/helpers.py": '"""u."""\n',
                "mining/stats.py": (
                    '"""m."""\nfrom repro.util.helpers import x\n'
                ),
            },
        )
        graph = build_module_graph(package)
        assert "repro.util.helpers" in graph.modules
        assert graph.edges["repro.mining.stats"] == {
            "repro.util.helpers": 2
        }

    def test_from_package_import_submodule_resolves(self, tmp_path):
        package = _make_package(
            tmp_path,
            {
                "util/rngish.py": '"""u."""\n',
                "asr/decoder.py": (
                    '"""a."""\nfrom repro.util import rngish\n'
                ),
            },
        )
        graph = build_module_graph(package)
        assert "repro.util.rngish" in graph.edges["repro.asr.decoder"]

    def test_relative_import_resolves(self, tmp_path):
        package = _make_package(
            tmp_path,
            {
                "mining/base.py": '"""b."""\n',
                "mining/derived.py": '"""d."""\nfrom .base import thing\n',
            },
        )
        graph = build_module_graph(package)
        assert "repro.mining.base" in graph.edges["repro.mining.derived"]

    def test_external_imports_ignored(self, tmp_path):
        package = _make_package(
            tmp_path,
            {"util/helpers.py": '"""u."""\nimport numpy as np\nimport os\n'},
        )
        graph = build_module_graph(package)
        assert graph.edges.get("repro.util.helpers", {}) == {}


class TestCycleDetection:
    def test_injected_cycle_detected(self, tmp_path):
        package = _make_package(
            tmp_path,
            {
                "asr/alpha.py": (
                    '"""a."""\nfrom repro.asr.beta import b\n'
                ),
                "asr/beta.py": (
                    '"""b."""\nfrom repro.asr.alpha import a\n'
                ),
            },
        )
        graph = build_module_graph(package)
        cycles = graph.find_cycles()
        assert cycles == [("repro.asr.alpha", "repro.asr.beta")]
        violations = check_layering(graph, DEFAULT_CONTRACT)
        assert any(v.rule_id == "import-cycle" for v in violations)

    def test_three_module_cycle(self, tmp_path):
        package = _make_package(
            tmp_path,
            {
                "mining/a.py": '"""a."""\nfrom repro.mining.b import x\n',
                "mining/b.py": '"""b."""\nfrom repro.mining.c import x\n',
                "mining/c.py": '"""c."""\nfrom repro.mining.a import x\n',
            },
        )
        cycles = build_module_graph(package).find_cycles()
        assert cycles == [
            ("repro.mining.a", "repro.mining.b", "repro.mining.c")
        ]

    def test_acyclic_tree_has_no_cycles(self, tmp_path):
        package = _make_package(
            tmp_path,
            {
                "util/a.py": '"""a."""\n',
                "mining/b.py": '"""b."""\nfrom repro.util.a import x\n',
            },
        )
        assert build_module_graph(package).find_cycles() == []


class TestReExportResolution:
    def test_single_init_hop(self, tmp_path):
        package = _make_package(
            tmp_path,
            {
                "util/__init__.py": (
                    '"""u."""\nfrom repro.util.impl import helper\n'
                ),
                "util/impl.py": '"""i."""\n\n\ndef helper():\n    pass\n',
            },
        )
        graph = build_module_graph(package)
        assert graph.resolve_export("repro.util", "helper") == (
            "repro.util.impl", "helper"
        )

    def test_chained_init_reexports(self, tmp_path):
        # consumer -> repro/__init__ -> repro.util/__init__ -> impl
        package = _make_package(
            tmp_path,
            {
                "__init__.py": (
                    '"""r."""\nfrom repro.util import helper\n'
                ),
                "util/__init__.py": (
                    '"""u."""\nfrom repro.util.impl import helper\n'
                ),
                "util/impl.py": '"""i."""\n\n\ndef helper():\n    pass\n',
                "mining/consumer.py": (
                    '"""c."""\nfrom repro import helper\n'
                ),
            },
        )
        graph = build_module_graph(package)
        assert graph.resolve_export("repro", "helper") == (
            "repro.util.impl", "helper"
        )
        # The consumer gets an edge to the *defining* module, so the
        # layer checker sees the real dependency.
        assert "repro.util.impl" in graph.edges["repro.mining.consumer"]

    def test_submodule_import_resolves_to_module(self, tmp_path):
        package = _make_package(
            tmp_path,
            {"util/impl.py": '"""i."""\n'},
        )
        graph = build_module_graph(package)
        assert graph.resolve_export("repro.util", "impl") == (
            "repro.util.impl", None
        )

    def test_alias_binding_is_followed(self, tmp_path):
        package = _make_package(
            tmp_path,
            {
                "util/__init__.py": (
                    '"""u."""\n'
                    "from repro.util.impl import helper as h\n"
                ),
                "util/impl.py": '"""i."""\n\n\ndef helper():\n    pass\n',
            },
        )
        graph = build_module_graph(package)
        assert graph.resolve_export("repro.util", "h") == (
            "repro.util.impl", "helper"
        )

    def test_reexport_cycle_is_guarded(self, tmp_path):
        package = _make_package(
            tmp_path,
            {
                "util/a.py": '"""a."""\nfrom repro.util.b import thing\n',
                "util/b.py": '"""b."""\nfrom repro.util.a import thing\n',
            },
        )
        graph = build_module_graph(package)
        # Neither module defines ``thing``; the chain must terminate
        # instead of looping, settling on the cycle entry.
        resolved = graph.resolve_export("repro.util.a", "thing")
        assert resolved is not None

    def test_external_base_returns_none(self, tmp_path):
        package = _make_package(tmp_path, {"util/a.py": '"""a."""\n'})
        graph = build_module_graph(package)
        assert graph.resolve_export("numpy", "ndarray") is None


class TestLayerContract:
    def test_util_may_not_import_mining(self, tmp_path):
        package = _make_package(
            tmp_path,
            {
                "util/sneaky.py": (
                    '"""u."""\nfrom repro.mining.stats import x\n'
                ),
                "mining/stats.py": '"""m."""\n',
            },
        )
        graph = build_module_graph(package)
        violations = check_layering(graph, DEFAULT_CONTRACT)
        assert len(violations) == 1
        violation = violations[0]
        assert violation.rule_id == "layer-contract"
        assert violation.line == 2
        assert "repro.util.sneaky" in violation.message
        assert "repro.mining.stats" in violation.message

    def test_downward_import_allowed(self, tmp_path):
        package = _make_package(
            tmp_path,
            {
                "util/a.py": '"""a."""\n',
                "mining/b.py": '"""b."""\nfrom repro.util.a import x\n',
            },
        )
        graph = build_module_graph(package)
        assert check_layering(graph, DEFAULT_CONTRACT) == []

    def test_sibling_engines_may_not_entangle(self, tmp_path):
        package = _make_package(
            tmp_path,
            {
                "asr/a.py": '"""a."""\nfrom repro.cleaning.b import x\n',
                "cleaning/b.py": '"""b."""\n',
            },
        )
        graph = build_module_graph(package)
        violations = check_layering(graph, DEFAULT_CONTRACT)
        assert [v.rule_id for v in violations] == ["layer-contract"]

    def test_undeclared_subsystem_reported(self, tmp_path):
        package = _make_package(
            tmp_path,
            {
                "newthing/a.py": '"""a."""\nfrom repro.util.b import x\n',
                "util/b.py": '"""b."""\n',
            },
        )
        graph = build_module_graph(package)
        violations = check_layering(graph, DEFAULT_CONTRACT)
        assert len(violations) == 1
        assert "not declared in the layer contract" in violations[0].message

    def test_custom_contract_ranks(self):
        contract = LayerContract(layers={"low": 0, "high": 1})
        assert contract.allows("high", "low")
        assert not contract.allows("low", "high")
        assert contract.allows("low", "low")
