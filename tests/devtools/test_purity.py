"""The purity checker against the adversarial fixture package.

``tests/devtools/fixtures/fxstage`` is analysed statically (never
imported): a vendored mini-engine plus one stage per finding the
checker must produce — a ``self._cache`` write in ``apply``, an
unseeded RNG draw two call-graph hops down, an under-claimed pure
stage, and a ``FunctionStage(pure=True)`` whose lambda mutates a
closure-captured list.
"""

from pathlib import Path

import pytest

from repro.devtools.effects import analyse_package
from repro.devtools.effectsrunner import effects_paths
from repro.devtools.purity import (
    RULE_MISSED_PARALLELISM,
    RULE_PURE_MISMATCH,
    RULE_SHARED_STATE,
    check_purity,
    declared_purity,
    find_stage_roots,
    stage_classes,
)
from repro.devtools.violations import Severity

FXSTAGE = Path(__file__).parent / "fixtures" / "fxstage"
STAGES_PY = FXSTAGE / "stages.py"
NOISE_PY = FXSTAGE / "noise.py"


def _line_of(path, needle):
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), 1
    ):
        if needle in line:
            return lineno
    raise AssertionError(f"{needle!r} not found in {path}")


@pytest.fixture(scope="module")
def fixture_run():
    return effects_paths([FXSTAGE])


def _findings(fixture_run, rule_id):
    report, _ = fixture_run
    return [v for v in report.violations if v.rule_id == rule_id]


class TestStageDiscovery:
    def test_vendored_engine_found_structurally(self):
        analysis = analyse_package(FXSTAGE)
        # Both Stage and MapStage define their own ``pure`` + ``process``.
        assert find_stage_roots(analysis.graph) == [
            "fxstage.engine.MapStage",
            "fxstage.engine.Stage",
        ]
        assert "fxstage.stages.CachingStage" in stage_classes(
            analysis.graph
        )

    def test_declared_purity_reads_mro_and_init(self):
        analysis = analyse_package(FXSTAGE)
        graph = analysis.graph
        # Inherited from MapStage's class attribute.
        assert declared_purity(graph, "fxstage.stages.CachingStage") is True
        # Overridden in the class body.
        assert declared_purity(graph, "fxstage.stages.HonestStage") is False


class TestSharedStateRace:
    def test_self_cache_write_in_apply(self, fixture_run):
        races = _findings(fixture_run, RULE_SHARED_STATE)
        (finding,) = [v for v in races if "CachingStage" in v.message]
        assert finding.path == str(STAGES_PY)
        assert finding.line == _line_of(STAGES_PY, "class CachingStage")
        assert finding.severity == Severity.ERROR
        assert "mutates-self" in finding.message
        write_line = _line_of(STAGES_PY, "self._cache[key] =")
        assert f"stages.py:{write_line}" in finding.message

    def test_closure_capturing_function_stage(self, fixture_run):
        races = _findings(fixture_run, RULE_SHARED_STATE)
        (finding,) = [v for v in races if "FunctionStage" in v.message]
        assert finding.path == str(STAGES_PY)
        assert finding.line == _line_of(STAGES_PY, "return FunctionStage(")
        assert "mutates-global" in finding.message
        append_line = _line_of(STAGES_PY, "seen.append")
        assert f"stages.py:{append_line}" in finding.message


class TestPureMismatch:
    def test_rng_two_hops_down_is_reported(self, fixture_run):
        (finding,) = _findings(fixture_run, RULE_PURE_MISMATCH)
        assert "SamplingStage" in finding.message
        assert finding.path == str(STAGES_PY)
        assert finding.line == _line_of(STAGES_PY, "class SamplingStage")
        assert "unseeded-rng" in finding.message
        # The witness names both intermediate hops and the draw site.
        assert "via noise.jitter" in finding.message
        assert "via noise._draw" in finding.message
        draw_line = _line_of(NOISE_PY, "return random.random()")
        assert f"noise.py:{draw_line}" in finding.message


class TestMissedParallelism:
    def test_underclaimed_stage_gets_advisory(self, fixture_run):
        (finding,) = _findings(fixture_run, RULE_MISSED_PARALLELISM)
        assert "HonestStage" in finding.message
        assert finding.line == _line_of(STAGES_PY, "class HonestStage")
        assert finding.severity == Severity.WARNING

    def test_base_classes_are_exempt(self, fixture_run):
        # ``Stage``/``MapStage`` are provably clean and declared
        # impure/pure respectively, but templates with subclasses must
        # not be advised to flip their default.
        _, stage_reports = fixture_run
        verdicts = {r.name: r.verdict for r in stage_reports}
        assert verdicts["fxstage.engine.Stage"] == "consistent"
        assert verdicts["fxstage.engine.MapStage"] == "consistent"


class TestVerdictTable:
    def test_every_fixture_stage_has_the_expected_verdict(
        self, fixture_run
    ):
        _, stage_reports = fixture_run
        verdicts = {r.name: r.verdict for r in stage_reports}
        assert verdicts["fxstage.stages.CachingStage"] == "race"
        assert verdicts["fxstage.stages.SamplingStage"] == "mismatch"
        assert verdicts["fxstage.stages.HonestStage"] == "advisory"
        assert verdicts[
            "FunctionStage construction in build_dedupe_stage"
        ] == "race"

    def test_finding_count_and_exit_code(self, fixture_run):
        report, _ = fixture_run
        assert len(report.violations) == 4
        assert report.exit_code() == 1


class TestNoqaIntegration:
    def test_effect_finding_is_suppressable(self, make_package):
        package = make_package({
            "a.py": '''\
                """a."""


                class Stage:
                    pure = False

                    def process(self, batch):
                        raise NotImplementedError


                class Bad(Stage):  # bivoc: noqa[effect-shared-state-race]
                    pure = True

                    def process(self, batch):
                        self._seen = batch
                        return batch
                ''',
        })
        report, _ = effects_paths([package])
        assert report.violations == []
        assert report.suppressed == 1
        assert report.exit_code() == 0

    def test_namespace_wildcard_suppresses(self, make_package):
        package = make_package({
            "a.py": '''\
                """a."""


                class Stage:
                    pure = False

                    def process(self, batch):
                        raise NotImplementedError


                class Bad(Stage):  # bivoc: noqa[effect-*]
                    pure = True

                    def process(self, batch):
                        self._seen = batch
                        return batch
                ''',
        })
        report, _ = effects_paths([package])
        assert report.violations == []
        assert report.suppressed == 1

    def test_unverifiable_stays_silent(self, make_package):
        # UNKNOWN effects must never produce a finding — the checker
        # reports "unverifiable", not a false positive.
        package = make_package({
            "a.py": '''\
                """a."""

                import mystery


                class Stage:
                    pure = False

                    def process(self, batch):
                        raise NotImplementedError


                class Dynamic(Stage):
                    pure = True

                    def process(self, batch):
                        return mystery.transform(batch)
                ''',
        })
        report, stage_reports = effects_paths([package])
        assert report.violations == []
        verdicts = {r.name: r.verdict for r in stage_reports}
        assert verdicts["fx.a.Dynamic"] == "unverifiable"


class TestCheckPurityDirect:
    def test_sorted_violations_and_reports(self):
        analysis = analyse_package(FXSTAGE)
        violations, reports = check_purity(analysis)
        assert violations == sorted(violations)
        assert [
            (r.path, r.line) for r in reports
        ] == sorted((r.path, r.line) for r in reports)
