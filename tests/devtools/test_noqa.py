"""``# bivoc: noqa`` parsing and runner integration."""

from pathlib import Path

from repro.devtools.noqa import ALL_RULES, is_suppressed, suppressions
from repro.devtools.runner import lint_paths
from repro.devtools.violations import Severity, Violation

FIXTURES = Path(__file__).parent / "fixtures"


def _violation(line, rule_id="no-bare-except"):
    return Violation(
        path="x.py",
        line=line,
        col=0,
        rule_id=rule_id,
        severity=Severity.ERROR,
        message="m",
    )


class TestParsing:
    def test_blanket_noqa(self):
        table = suppressions(["x = 1  # bivoc: noqa"])
        assert table == {1: {ALL_RULES}}

    def test_single_rule(self):
        table = suppressions(["x = 1  # bivoc: noqa[no-bare-except]"])
        assert table == {1: {"no-bare-except"}}

    def test_multiple_rules(self):
        table = suppressions(
            ["x = 1  # bivoc: noqa[no-bare-except, layer-contract]"]
        )
        assert table == {1: {"no-bare-except", "layer-contract"}}

    def test_justification_text_after_bracket_allowed(self):
        table = suppressions(
            ["f()  # bivoc: noqa[no-bare-except] — vendored interface"]
        )
        assert table == {1: {"no-bare-except"}}

    def test_plain_comment_is_not_noqa(self):
        assert suppressions(["x = 1  # normal comment"]) == {}


class TestMatching:
    def test_rule_specific_suppression(self):
        table = {3: {"no-bare-except"}}
        assert is_suppressed(_violation(3), table)
        assert not is_suppressed(_violation(3, "no-unseeded-rng"), table)

    def test_blanket_suppresses_everything(self):
        table = {3: {ALL_RULES}}
        assert is_suppressed(_violation(3, "anything"), table)

    def test_other_lines_unaffected(self):
        table = {3: {ALL_RULES}}
        assert not is_suppressed(_violation(4), table)


class TestRunnerIntegration:
    def test_suppressed_fixture_is_clean_but_counted(self):
        report = lint_paths([FIXTURES / "noqa_suppressed.py"])
        assert report.violations == []
        assert report.suppressed == 1
        assert report.exit_code() == 0

    def test_suppression_is_line_scoped(self):
        report = lint_paths([FIXTURES / "mutable_default.py"])
        assert len(report.violations) == 2
