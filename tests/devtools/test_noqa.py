"""``# bivoc: noqa`` parsing and runner integration."""

from pathlib import Path

from repro.devtools.effectsrunner import effects_paths
from repro.devtools.noqa import (
    ALL_RULES,
    SuppressionTracker,
    is_suppressed,
    rule_matches,
    suppressions,
)
from repro.devtools.runner import lint_paths
from repro.devtools.violations import Severity, Violation

FIXTURES = Path(__file__).parent / "fixtures"


def _violation(line, rule_id="no-bare-except"):
    return Violation(
        path="x.py",
        line=line,
        col=0,
        rule_id=rule_id,
        severity=Severity.ERROR,
        message="m",
    )


class TestParsing:
    def test_blanket_noqa(self):
        table = suppressions(["x = 1  # bivoc: noqa"])
        assert table == {1: {ALL_RULES}}

    def test_single_rule(self):
        table = suppressions(["x = 1  # bivoc: noqa[no-bare-except]"])
        assert table == {1: {"no-bare-except"}}

    def test_multiple_rules(self):
        table = suppressions(
            ["x = 1  # bivoc: noqa[no-bare-except, layer-contract]"]
        )
        assert table == {1: {"no-bare-except", "layer-contract"}}

    def test_justification_text_after_bracket_allowed(self):
        table = suppressions(
            ["f()  # bivoc: noqa[no-bare-except] — vendored interface"]
        )
        assert table == {1: {"no-bare-except"}}

    def test_plain_comment_is_not_noqa(self):
        assert suppressions(["x = 1  # normal comment"]) == {}


class TestMatching:
    def test_rule_specific_suppression(self):
        table = {3: {"no-bare-except"}}
        assert is_suppressed(_violation(3), table)
        assert not is_suppressed(_violation(3, "no-unseeded-rng"), table)

    def test_blanket_suppresses_everything(self):
        table = {3: {ALL_RULES}}
        assert is_suppressed(_violation(3, "anything"), table)

    def test_other_lines_unaffected(self):
        table = {3: {ALL_RULES}}
        assert not is_suppressed(_violation(4), table)


class TestWildcards:
    def test_exact_pattern(self):
        assert rule_matches("no-bare-except", "no-bare-except")
        assert not rule_matches("no-bare-except", "no-unseeded-rng")

    def test_blanket_matches_everything(self):
        assert rule_matches("anything-at-all", ALL_RULES)

    def test_namespace_prefix(self):
        assert rule_matches("effect-pure-mismatch", "effect-*")
        assert rule_matches("effect-shared-state-race", "effect-*")
        assert not rule_matches("no-bare-except", "effect-*")

    def test_wildcard_parses_in_comment(self):
        table = suppressions(["x = 1  # bivoc: noqa[effect-*]"])
        assert table == {1: {"effect-*"}}


class TestTokenisation:
    def test_marker_in_string_literal_is_prose(self):
        assert suppressions(['x = "# bivoc: noqa"']) == {}

    def test_marker_in_docstring_is_prose(self):
        assert suppressions(
            ['"""Explains the # bivoc: noqa syntax."""']
        ) == {}

    def test_marker_quoted_mid_comment_is_prose(self):
        assert suppressions(
            ["x = 1  # see the # bivoc: noqa docs for details"]
        ) == {}

    def test_fallback_scan_on_untokenisable_source(self):
        # An unterminated bracket breaks tokenisation; the raw-line
        # fallback must still find the suppression (over-matching is
        # acceptable, losing a waiver is not).
        table = suppressions(
            ["x = (", "1  # bivoc: noqa[no-bare-except]"]
        )
        assert table == {2: {"no-bare-except"}}


class TestSuppressionTracker:
    LINE = "x = 1  # bivoc: noqa[no-bare-except]"

    def test_filter_records_usage(self):
        tracker = SuppressionTracker([self.LINE], path="x.py")
        assert tracker.filter(_violation(1))
        assert tracker.unused_entries({"no-bare-except"}) == []

    def test_stale_entry_surfaces(self):
        tracker = SuppressionTracker([self.LINE])
        assert tracker.unused_entries({"no-bare-except"}) == [
            (1, "no-bare-except")
        ]

    def test_inactive_rule_is_not_called_stale(self):
        tracker = SuppressionTracker([self.LINE])
        assert tracker.unused_entries({"no-unseeded-rng"}) == []

    def test_blanket_needs_opt_in(self):
        tracker = SuppressionTracker(["x = 1  # bivoc: noqa"])
        assert tracker.unused_entries({"no-bare-except"}) == []
        assert tracker.unused_entries(
            {"no-bare-except"}, include_blanket=True
        ) == [(1, ALL_RULES)]

    def test_listing_unused_noqa_exempts_the_entry(self):
        tracker = SuppressionTracker(
            ["x = 1  # bivoc: noqa[no-bare-except, unused-noqa]"]
        )
        assert tracker.unused_entries({"no-bare-except"}) == []


class TestRunnerIntegration:
    def test_suppressed_fixture_is_clean_but_counted(self):
        report = lint_paths([FIXTURES / "noqa_suppressed.py"])
        assert report.violations == []
        assert report.suppressed == 1
        assert report.exit_code() == 0

    def test_suppression_is_line_scoped(self):
        report = lint_paths([FIXTURES / "mutable_default.py"])
        assert len(report.violations) == 2


class TestUnusedSuppressionReporting:
    def test_stale_suppression_is_its_own_finding(self, tmp_path):
        path = tmp_path / "m.py"
        path.write_text(
            '"""m."""\n\nX = 1  # bivoc: noqa[no-bare-except]\n'
        )
        report = lint_paths([path])
        assert [v.rule_id for v in report.violations] == ["unused-noqa"]
        violation = report.violations[0]
        assert violation.line == 3
        assert violation.severity == Severity.WARNING
        assert "no-bare-except" in violation.message

    def test_effect_suppression_untouched_by_plain_lint(self, tmp_path):
        # Without --effects the effect rules never ran, so an effect
        # waiver must not be called stale.
        path = tmp_path / "m.py"
        path.write_text(
            '"""m."""\n\nX = 1  # bivoc: noqa[effect-pure-mismatch]\n'
        )
        assert lint_paths([path]).violations == []

    def test_effect_suppression_reported_by_effects_run(
        self, make_package
    ):
        package = make_package({
            "a.py": (
                '"""a."""\n\n'
                "X = 1  # bivoc: noqa[effect-pure-mismatch]\n"
            ),
        })
        report, _ = effects_paths([package])
        assert [v.rule_id for v in report.violations] == ["unused-noqa"]

    def test_stale_blanket_reported_only_on_full_run(self, make_package):
        package = make_package({
            "a.py": '"""a."""\n\nX = 1  # bivoc: noqa\n',
        })
        assert lint_paths([package]).violations == []
        report = lint_paths([package], effects=True)
        assert [v.rule_id for v in report.violations] == ["unused-noqa"]
