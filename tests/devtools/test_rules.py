"""Each AST rule against its fixture snippet, plus edge cases."""

from pathlib import Path

import pytest

from repro.devtools.rules import FileContext, check_file, default_rules
from repro.devtools.runner import lint_paths

FIXTURES = Path(__file__).parent / "fixtures"

#: fixture file -> (expected rule id, expected finding count)
FIXTURE_EXPECTATIONS = [
    ("rng_unseeded.py", "no-unseeded-rng", 2),
    ("wallclock.py", "no-wallclock-in-algo", 2),
    ("mutable_default.py", "no-mutable-default-arg", 2),
    ("bare_except.py", "no-bare-except", 1),
    ("float_eq_test.py", "no-float-eq-assert", 1),
    ("missing_docstring.py", "public-api-docstring", 2),
    ("bad_paper_ref.py", "paper-ref-valid", 3),
    ("bad_exports.py", "all-exports-exist", 1),
]


class TestFixtures:
    @pytest.mark.parametrize(
        "filename,rule_id,count", FIXTURE_EXPECTATIONS
    )
    def test_fixture_triggers_exactly_its_rule(
        self, filename, rule_id, count
    ):
        report = lint_paths([FIXTURES / filename])
        assert {v.rule_id for v in report.violations} == {rule_id}
        assert len(report.violations) == count
        assert report.exit_code() == 1

    def test_fixture_lines_point_at_offending_code(self):
        report = lint_paths([FIXTURES / "bare_except.py"])
        (violation,) = report.violations
        source_line = (FIXTURES / "bare_except.py").read_text().splitlines()[
            violation.line - 1
        ]
        assert "except:" in source_line


def _check_source(source, filename="mod.py", is_test=None):
    ctx = FileContext.parse(
        FIXTURES / filename, source=source, is_test=is_test
    )
    return check_file(ctx)


class TestUnseededRng:
    def test_np_random_legacy_functions_flagged(self):
        violations = _check_source(
            '"""m."""\nimport numpy as np\n\n\n'
            "def f():\n"
            '    """d."""\n'
            "    return np.random.normal(0, 1)\n"
        )
        assert [v.rule_id for v in violations] == ["no-unseeded-rng"]

    def test_from_numpy_random_import_flagged(self):
        violations = _check_source(
            '"""m."""\nfrom numpy.random import default_rng\n\n\n'
            "def f():\n"
            '    """d."""\n'
            "    return default_rng(3)\n"
        )
        assert [v.rule_id for v in violations] == ["no-unseeded-rng"]

    def test_util_rng_module_is_exempt(self, tmp_path):
        home = tmp_path / "util"
        home.mkdir()
        path = home / "rng.py"
        path.write_text(
            '"""m."""\nimport numpy as np\n\n\n'
            "def make():\n"
            '    """d."""\n'
            "    return np.random.default_rng(0)\n"
        )
        report = lint_paths([path])
        assert report.violations == []

    def test_test_files_are_exempt(self):
        violations = _check_source(
            '"""m."""\nimport numpy as np\n\n'
            "def test_f():\n"
            "    assert np.random.default_rng(0) is not None\n",
            is_test=True,
        )
        assert violations == []

    def test_isinstance_generator_check_not_flagged(self):
        violations = _check_source(
            '"""m."""\nimport numpy as np\n\n\n'
            "def f(seed):\n"
            '    """d."""\n'
            "    return isinstance(seed, np.random.Generator)\n"
        )
        assert violations == []


class TestWallclock:
    def test_bare_time_import_alias(self):
        violations = _check_source(
            '"""m."""\nfrom time import time\n\n\n'
            "def f():\n"
            '    """d."""\n'
            "    return time()\n"
        )
        assert [v.rule_id for v in violations] == ["no-wallclock-in-algo"]

    def test_unrelated_now_method_not_flagged(self):
        violations = _check_source(
            '"""m."""\n\n\n'
            "def f(clock):\n"
            '    """d."""\n'
            "    return clock.now()\n"
        )
        assert violations == []


class TestFloatEqAssert:
    def test_dyadic_literals_tolerated(self):
        violations = _check_source(
            "def test_half():\n    assert 1.0 / 2.0 == 0.5\n"
            "def test_one():\n    assert f() == 1.0\n",
            is_test=True,
        )
        assert violations == []

    def test_inexact_literal_flagged_either_side(self):
        violations = _check_source(
            "def test_bad():\n    assert 0.3 == f()\n", is_test=True
        )
        assert [v.rule_id for v in violations] == ["no-float-eq-assert"]

    def test_pytest_approx_passes(self):
        violations = _check_source(
            "import pytest\n\n"
            "def test_ok():\n"
            "    assert f() == pytest.approx(0.3)\n",
            is_test=True,
        )
        assert violations == []

    def test_source_files_unaffected(self):
        violations = _check_source(
            '"""m."""\n\n\n'
            "def f(x):\n"
            '    """d."""\n'
            "    assert x == 0.3\n",
            is_test=False,
        )
        assert violations == []


class TestPublicApiDocstring:
    def test_nested_functions_are_not_public_api(self):
        violations = _check_source(
            '"""m."""\n\n\n'
            "def outer():\n"
            '    """d."""\n'
            "    def helper():\n"
            "        return 1\n"
            "    return helper\n"
        )
        assert violations == []

    def test_private_class_methods_are_not_public_api(self):
        violations = _check_source(
            '"""m."""\n\n\nclass _Private:\n    def build(self):\n'
            "        return 1\n"
        )
        assert violations == []

    def test_missing_module_docstring_flagged(self):
        violations = _check_source("x = 1\n")
        assert [v.rule_id for v in violations] == ["public-api-docstring"]


class TestAllExportsExist:
    def test_imported_names_count_as_defined(self):
        violations = _check_source(
            '"""m."""\nfrom os.path import join\n\n'
            '__all__ = ["join"]\n'
        )
        assert violations == []

    def test_star_import_disables_check(self):
        violations = _check_source(
            '"""m."""\nfrom os.path import *\n\n'
            '__all__ = ["who_knows"]\n'
        )
        assert violations == []

    def test_dynamic_all_rejected(self):
        violations = _check_source(
            '"""m."""\n\n__all__ = sorted(("a", "b"))\n'
        )
        assert [v.rule_id for v in violations] == ["all-exports-exist"]


class TestEngine:
    def test_every_rule_has_unique_id_and_description(self):
        rules = default_rules()
        ids = [rule.rule_id for rule in rules]
        assert len(ids) == len(set(ids))
        assert all(rule.rule_id for rule in rules)
        assert all(rule.description for rule in rules)

    def test_violations_are_sorted(self):
        report = lint_paths([FIXTURES / "wallclock.py"])
        assert report.violations == sorted(report.violations)


class TestEffectRuleRegistry:
    def test_effect_system_rule_ids_stay_in_sync(self):
        # ``rules.py`` duplicates the effect rule ids as string
        # literals so the rule-engine core stays importable without
        # the effect system; this pins the two lists together.
        from repro.devtools import noqa
        from repro.devtools.purity import EFFECT_RULE_IDS
        from repro.devtools.rules import (
            ALL_RULE_IDS,
            EFFECT_SYSTEM_RULE_IDS,
        )

        assert EFFECT_SYSTEM_RULE_IDS == (
            EFFECT_RULE_IDS + (noqa.RULE_UNUSED_NOQA,)
        )
        for rule_id in EFFECT_SYSTEM_RULE_IDS:
            assert rule_id in ALL_RULE_IDS

    def test_effect_rule_ids_are_selectable(self):
        # ``--select``/``--ignore`` validation must accept them.
        report = lint_paths(
            [FIXTURES / "wallclock.py"], select=["effect-pure-mismatch"]
        )
        assert report.violations == []
