"""The ``bivoc lint`` subcommand end to end."""

import json
from pathlib import Path

import pytest

from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"

FIXTURE_RULES = [
    ("rng_unseeded.py", "no-unseeded-rng"),
    ("wallclock.py", "no-wallclock-in-algo"),
    ("mutable_default.py", "no-mutable-default-arg"),
    ("bare_except.py", "no-bare-except"),
    ("float_eq_test.py", "no-float-eq-assert"),
    ("missing_docstring.py", "public-api-docstring"),
    ("bad_paper_ref.py", "paper-ref-valid"),
    ("bad_exports.py", "all-exports-exist"),
]


class TestLintCommand:
    @pytest.mark.parametrize("filename,rule_id", FIXTURE_RULES)
    def test_fixture_fails_with_rule_id_in_json(
        self, capsys, filename, rule_id
    ):
        code = main(
            ["lint", str(FIXTURES / filename), "--format", "json"]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["total"] >= 1
        assert {v["rule"] for v in payload["violations"]} == {rule_id}

    def test_clean_file_exits_zero(self, capsys):
        code = main(
            ["lint", str(FIXTURES / "noqa_suppressed.py")]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "clean" in out
        assert "1 suppressed" in out

    def test_text_format_lists_locations(self, capsys):
        code = main(["lint", str(FIXTURES / "bare_except.py")])
        assert code == 1
        out = capsys.readouterr().out
        assert "bare_except.py:" in out
        assert "no-bare-except" in out

    def test_select_filters_rules(self, capsys):
        code = main(
            [
                "lint",
                str(FIXTURES / "mutable_default.py"),
                "--select",
                "no-bare-except",
            ]
        )
        assert code == 0

    def test_unknown_rule_id_is_usage_error(self, capsys):
        code = main(
            ["lint", str(FIXTURES / "bare_except.py"), "--select", "nope"]
        )
        assert code == 2
        assert "unknown rule id" in capsys.readouterr().err

    def test_missing_path_is_usage_error(self, capsys):
        code = main(["lint", "does/not/exist.txt"])
        assert code == 2

    def test_default_paths_cover_the_source_tree(self, capsys):
        code = main(["lint", "--format", "json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        # 80+ modules in src/repro; the default must have scanned them.
        assert payload["summary"]["files_scanned"] >= 80
