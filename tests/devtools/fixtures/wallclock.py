"""Fixture: wall-clock reads inside algorithm code."""

import time
from datetime import datetime


def stamp_result(value):
    """Attach non-reproducible timestamps (two findings)."""
    return {"value": value, "at": time.time(), "day": datetime.now()}
