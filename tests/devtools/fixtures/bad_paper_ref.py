"""Fixture: citations of paper artifacts that do not exist.

This implements Eqn 9 as described in Table VII of the paper.
"""


def misquoted():
    """See Section IX for details (the paper stops at VII)."""
    return None
