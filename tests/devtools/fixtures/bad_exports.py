"""Fixture: ``__all__`` exporting a name that is never defined."""

__all__ = ["present", "missing_name"]


def present():
    """The export that does exist."""
    return True
