"""Fixture: a public function without a docstring."""


def documented():
    """This one is fine."""
    return 1


def undocumented():
    return 2


class PublicThing:
    """The class is documented..."""

    def method_without_docs(self):
        return 3

    def _private_ok(self):
        return 4
