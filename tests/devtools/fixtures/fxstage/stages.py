"""Stages that lie about their purity, one per checker rule.

* :class:`CachingStage` — inherits ``pure = True`` from ``MapStage``
  but memoises into ``self._cache`` inside ``apply``: shared mutable
  state across parallel workers (``effect-shared-state-race``).
* :class:`SamplingStage` — also declared pure, but its ``apply``
  reaches ``random.random()`` two call-graph hops away
  (``apply`` -> ``jitter`` -> ``_draw``): ``effect-pure-mismatch``.
* :class:`HonestStage` — provably clean yet declared ``pure = False``:
  the ``effect-missed-parallelism`` advisory.
* :func:`build_dedupe_stage` — a ``FunctionStage`` mis-declared
  ``pure=True`` whose lambda appends to a closure-captured list:
  the construction-site race finding.
"""

from fxstage.engine import FunctionStage, MapStage
from fxstage.noise import jitter


class CachingStage(MapStage):
    """Memoises per-key results in an instance dict — a data race."""

    def __init__(self):
        self._cache = {}

    def apply(self, document):
        """Annotate ``document`` from the (shared) cache."""
        key = document.key
        if key not in self._cache:
            self._cache[key] = [document.text]
        document.tokens = self._cache[key]


class SamplingStage(MapStage):
    """Perturbs scores with an unseeded draw buried two calls deep."""

    def apply(self, document):
        """Jitter the document score."""
        document.score = jitter(document.score)


class HonestStage(MapStage):
    """Provably pure, but modestly declared impure."""

    pure = False

    def apply(self, document):
        """Tokenise the document text in place."""
        document.tokens = [t for t in document.text.split() if t]


def build_dedupe_stage():
    """Construct a ``FunctionStage`` that lies about its purity.

    The lambda appends every key to ``seen`` — an enclosing local
    captured by closure, so parallel workers would share it.
    """
    seen = []
    return FunctionStage(
        "dedupe",
        lambda document: seen.append(document.key),
        pure=True,
    )
