"""Adversarial fixture package for the ``bivoc effects`` checker.

A vendored mini-engine (:mod:`fxstage.engine`) plus stages that lie
about their purity in every way the checker must catch — and one that
under-claims, for the missed-parallelism advisory.  This package is
analysed statically (never imported by the tests), so the stages are
deliberately unsafe.

Re-exports below exercise the ``__init__`` re-export chain the call
graph must resolve.
"""

from fxstage.engine import FunctionStage, MapStage, Stage
from fxstage.stages import CachingStage, HonestStage, SamplingStage

__all__ = [
    "Stage",
    "MapStage",
    "FunctionStage",
    "CachingStage",
    "HonestStage",
    "SamplingStage",
]
