"""A vendored mini stage engine (structural twin of the real one).

The purity checker detects stage protocols *structurally* — a class
defining both a ``pure`` attribute and a ``process`` method — so this
self-contained copy is recognised without any configuration.  Its
``MapStage`` dispatches through an ``apply`` hook (a different name
from the real engine's ``process_document``) to prove the checker
follows the concrete class's own template method rather than
hard-coded hook names.
"""


class Stage:
    """Base stage: batch in, batch out."""

    pure = False

    def process(self, batch):
        """Transform a batch of documents."""
        raise NotImplementedError


class MapStage(Stage):
    """Per-document stage; subclasses implement ``apply``."""

    pure = True

    def process(self, batch):
        """Apply the per-document hook to every document."""
        for document in batch:
            self.apply(document)
        return batch

    def apply(self, document):
        """Process one document in place."""
        raise NotImplementedError


class FunctionStage(Stage):
    """Adapt ``fn(document) -> None`` into a stage."""

    def __init__(self, name, fn, pure=False):
        """``pure`` is declared by the caller, as in the real engine."""
        self.name = name
        self._fn = fn
        self.pure = pure

    def process(self, batch):
        """Apply the wrapped function to every document."""
        for document in batch:
            self._fn(document)
        return batch
