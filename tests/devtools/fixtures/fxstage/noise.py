"""Helpers that bury an unseeded RNG draw two calls deep.

``SamplingStage.apply`` -> :func:`jitter` -> :func:`_draw` ->
``random.random()``: the effect checker must carry the
``unseeded-rng`` effect back up through both hops.
"""

import random


def jitter(value):
    """Perturb ``value`` by a tiny random amount."""
    return value + _draw()


def _draw():
    """The actual unseeded draw, one more hop down."""
    return random.random() * 1e-6
