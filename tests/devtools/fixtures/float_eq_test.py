"""Fixture: float-equality asserts in a test file.

Named ``*_test.py`` so the linter's test-file heuristic applies, while
staying invisible to pytest collection (which only looks at
``test_*.py``).
"""


def test_sum_is_three_tenths():
    """0.1 + 0.2 != 0.3 in binary: the assert this rule exists for."""
    total = 0.1 + 0.2
    assert total == 0.3


def test_exact_half_is_tolerated():
    """Dyadic literals (0.5) are exact, so this one is not flagged."""
    assert 1.0 / 2.0 == 0.5
