"""Fixture: a bare ``except:`` clause."""


def swallow_everything(callback):
    """Run ``callback`` and hide every failure (one finding)."""
    try:
        return callback()
    except:
        return None
