"""Fixture: raw RNG construction outside ``util/rng.py``."""

import random

import numpy as np


def draw_numbers():
    """Draw from streams that bypass ``derive_rng`` (two findings)."""
    generator = np.random.default_rng(1234)
    return generator.random(), random.random()
