"""Fixture: a violation waived by an inline justification."""


def render(rows, header=[]):  # bivoc: noqa[no-mutable-default-arg] — never mutated, read-only default
    """The default list is only iterated, never mutated."""
    return list(header) + list(rows)
