"""Fixture: mutable default argument values."""


def accumulate(item, bucket=[]):
    """Classic shared-list default (one finding)."""
    bucket.append(item)
    return bucket


def tally(item, counts={}):
    """Shared-dict default (one finding)."""
    counts[item] = counts.get(item, 0) + 1
    return counts
