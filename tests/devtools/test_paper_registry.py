"""Citation extraction and validation against the paper registry."""

from repro.devtools.paper import (
    default_registry,
    int_to_roman,
    roman_value,
)


class TestRoman:
    def test_round_trip(self):
        for n in range(1, 40):
            assert roman_value(int_to_roman(n)) == n

    def test_malformed_rejected(self):
        assert roman_value("IIX") is None
        assert roman_value("IIII") is None
        assert roman_value("ABC") is None


class TestExtraction:
    def setup_method(self):
        self.registry = default_registry()

    def _idents(self, text, kind):
        return [
            c.ident
            for c in self.registry.extract(text)
            if c.kind == kind
        ]

    def test_simple_forms(self):
        text = "Implements Eqn 2 and Table III; see Fig 4, Section IV-B."
        assert self._idents(text, "eqn") == ["2"]
        assert self._idents(text, "table") == ["III"]
        assert self._idents(text, "fig") == ["4"]
        assert self._idents(text, "section") == ["IV-B"]

    def test_compact_section_forms(self):
        assert self._idents("the SecVI churn study", "section") == ["VI"]
        assert self._idents("the SecV-C experiment", "section") == ["V-C"]

    def test_numbered_subsection(self):
        assert self._idents("per Section IV-D.2", "section") == ["IV-D.2"]

    def test_trailing_period_not_a_subsection(self):
        assert self._idents("see Section V-C. Then", "section") == ["V-C"]

    def test_table_range_expansion(self):
        assert self._idents("regenerates Tables II-IV", "table") == [
            "II",
            "III",
            "IV",
        ]

    def test_table_conjunction(self):
        assert self._idents("Tables III and IV", "table") == ["III", "IV"]

    def test_equation_spelled_out(self):
        assert self._idents("Equation 3 defines", "eqn") == ["3"]

    def test_figure_spelled_out(self):
        assert self._idents("Figure 1 shows", "fig") == ["1"]

    def test_prose_without_citations(self):
        assert self.registry.extract("an equal table of figures") == []


class TestValidation:
    def setup_method(self):
        self.registry = default_registry()

    def _problems(self, text):
        return [
            self.registry.problem(c)
            for c in self.registry.extract(text)
            if self.registry.problem(c) is not None
        ]

    def test_valid_citations_pass(self):
        text = (
            "Eqn 1, Eqn 4, Table I, Tables II-IV, Fig 2, Section III, "
            "Section IV-A.2, Section V-C, SecVI"
        )
        assert self._problems(text) == []

    def test_unknown_equation(self):
        assert any("no Eqn 9" in p for p in self._problems("per Eqn 9"))

    def test_unknown_figure(self):
        assert any("no Fig 7" in p for p in self._problems("see Fig 7"))

    def test_unknown_table(self):
        problems = self._problems("see Table VII")
        assert any("no Table VII" in p for p in problems)

    def test_arabic_table_number_rejected(self):
        problems = self._problems("see Table 3")
        assert any("roman numerals" in p for p in problems)
        assert any("Table III" in p for p in problems)

    def test_unknown_section(self):
        assert any(
            "no Section IX" in p for p in self._problems("Section IX")
        )

    def test_unknown_subsection(self):
        assert any(
            "no Section VII-A" in p
            for p in self._problems("Section VII-A")
        )

    def test_unknown_numbered_part(self):
        assert any(
            "no Section IV-D.9" in p
            for p in self._problems("Section IV-D.9")
        )
