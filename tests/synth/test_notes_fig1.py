"""Tests for agent notes and the Fig-1 artifact."""

import pytest

from repro.synth.carrental import CarRentalConfig, generate_car_rental
from repro.core.fig1 import fig1_examples, render_fig1
from repro.synth.notes import (
    AgentNoteGenerator,
    note_shorthand_table,
)


@pytest.fixture(scope="module")
def corpus():
    return generate_car_rental(
        CarRentalConfig(
            n_agents=5,
            n_days=2,
            calls_per_agent_per_day=4,
            n_customers=40,
            seed=8,
        )
    )


class TestAgentNotes:
    def test_one_note_per_call(self, corpus):
        notes = AgentNoteGenerator().notes_for_corpus(corpus)
        assert len(notes) == len(corpus.truths)
        assert {n.call_id for n in notes} == set(corpus.truths)

    def test_note_reflects_call_type(self, corpus):
        generator = AgentNoteGenerator(seed=3)
        for truth in list(corpus.truths.values())[:20]:
            note = generator.note_for(truth)
            if truth.call_type == "reservation":
                assert (
                    "confirmed" in note.clean_text
                    or "reservation done" in note.clean_text
                )
            elif truth.call_type == "unbooked":
                assert (
                    "not ready" in note.clean_text
                    or "will call back" in note.clean_text
                    or "think about it" in note.clean_text
                )

    def test_city_usually_mentioned(self, corpus):
        generator = AgentNoteGenerator(seed=3)
        truths = list(corpus.truths.values())[:20]
        mentions = sum(
            1
            for truth in truths
            if truth.city in generator.note_for(truth).clean_text
        )
        # Most templates carry the city; at least half the notes do.
        assert mentions >= len(truths) // 2

    def test_shorthand_applied(self, corpus):
        generator = AgentNoteGenerator(seed=3, shorthand_rate=1.0,
                                       typo_rate=0.0)
        notes = generator.notes_for_corpus(corpus, limit=10)
        joined = " ".join(n.text for n in notes)
        assert "cust" in joined or "tht" in joined or "teh" in joined

    def test_deterministic(self, corpus):
        a = AgentNoteGenerator(seed=5).notes_for_corpus(corpus, limit=5)
        b = AgentNoteGenerator(seed=5).notes_for_corpus(corpus, limit=5)
        assert a == b

    def test_shorthand_table_single_words(self):
        table = note_shorthand_table()
        assert table["cust"] == "customer"
        assert all(" " not in key for key in table)

    def test_normaliser_recovers_shorthand(self, corpus):
        from repro.cleaning.sms import SmsNormalizer

        normalizer = SmsNormalizer(domain_terms=note_shorthand_table())
        generator = AgentNoteGenerator(seed=3, shorthand_rate=1.0,
                                       typo_rate=0.0)
        note = generator.note_for(next(iter(corpus.truths.values())))
        recovered = normalizer.normalize(note.text)
        # Normalisation moves the note back toward its clean form.
        clean_words = set(note.clean_text.split())
        before = len(set(note.text.split()) & clean_words)
        after = len(set(recovered.split()) & clean_words)
        assert after >= before


class TestFig1:
    def test_all_channels_present(self):
        examples = fig1_examples(seed=61)
        assert set(examples) == {
            "contact center notes",
            "email",
            "sms",
            "call transcript",
        }
        for text in examples.values():
            assert text.strip()

    def test_call_transcript_is_uppercase(self):
        examples = fig1_examples(seed=61)
        transcript = examples["call transcript"]
        assert transcript == transcript.upper()

    def test_email_has_headers(self):
        examples = fig1_examples(seed=61)
        assert examples["email"].startswith("from:")

    def test_render(self):
        text = render_fig1(seed=61)
        assert "--- sms ---" in text
