"""Tests for the car-rental corpus generator."""

import pytest

from repro.synth.calibration import BehaviourRates
from repro.synth.carrental import (
    CarRentalConfig,
    TrainingEffect,
    generate_car_rental,
    solve_training_scale,
)
from repro.synth.lexicon import CITY_VEHICLE_WEIGHTS


@pytest.fixture(scope="module")
def corpus():
    return generate_car_rental(
        CarRentalConfig(
            n_agents=30,
            n_days=4,
            calls_per_agent_per_day=6,
            n_customers=300,
            seed=7,
        )
    )


class TestStructure:
    def test_call_count(self, corpus):
        assert len(corpus.transcripts) == corpus.config.n_calls
        assert len(corpus.truths) == corpus.config.n_calls

    def test_tables_present(self, corpus):
        assert corpus.database.table_names == ["agents", "calls", "customers"]
        assert len(corpus.database.table("calls")) == corpus.config.n_calls

    def test_every_call_has_matching_record(self, corpus):
        calls = corpus.database.table("calls")
        for call_id, truth in corpus.truths.items():
            record = calls.get(call_id)
            assert record["agent_name"] == truth.agent_name
            assert record["call_type"] == truth.call_type
            assert record["customer_ref"] == truth.customer_entity_id

    def test_reservations_have_cost_and_confirmation(self, corpus):
        for record in corpus.database.table("calls"):
            if record["call_type"] == "reservation":
                assert record["booking_cost"] > 0
                assert record["confirmation"].startswith("CR")
            else:
                assert record["confirmation"] is None

    def test_indexes_built(self, corpus):
        assert corpus.database.has_index("customers", "name")
        assert corpus.database.has_index("customers", "phone")

    def test_deterministic(self):
        config = CarRentalConfig(
            n_agents=5, n_days=1, calls_per_agent_per_day=2, n_customers=20
        )
        a = generate_car_rental(config)
        b = generate_car_rental(config)
        assert [t.text for t in a.transcripts] == [
            t.text for t in b.transcripts
        ]

    def test_different_seeds_differ(self):
        base = CarRentalConfig(
            n_agents=5, n_days=1, calls_per_agent_per_day=4, n_customers=20
        )
        other = CarRentalConfig(
            n_agents=5,
            n_days=1,
            calls_per_agent_per_day=4,
            n_customers=20,
            seed=99,
        )
        a = generate_car_rental(base)
        b = generate_car_rental(other)
        assert [t.text for t in a.transcripts] != [
            t.text for t in b.transcripts
        ]


class TestTranscripts:
    def test_identity_mentioned(self, corpus):
        customers = corpus.database.table("customers")
        for transcript in corpus.transcripts[:50]:
            truth = corpus.truths[transcript.call_id]
            person = customers.get(truth.customer_entity_id)
            assert person["name"] in transcript.customer_text

    def test_agent_name_in_greeting(self, corpus):
        for transcript in corpus.transcripts[:20]:
            assert transcript.agent_name in transcript.turns[0][1]

    def test_speaker_separation(self, corpus):
        transcript = corpus.transcripts[0]
        assert transcript.customer_text
        assert transcript.agent_text
        assert transcript.text.split() == (
            " ".join(t for _, t in transcript.turns).split()
        )

    def test_value_selling_truth_reflected_in_text(self, corpus):
        # Every call flagged as discount contains a discount-ish phrase.
        discount_words = ("discount", "corporate", "motor club",
                          "buying club", "promotional")
        for transcript in corpus.transcripts:
            truth = corpus.truths[transcript.call_id]
            if truth.used_discount:
                assert any(
                    word in transcript.agent_text for word in discount_words
                ), transcript.agent_text


class TestPlantedAssociations:
    def test_conditional_booking_rates_near_targets(self, corpus):
        sales = corpus.sales_truths

        def rate(predicate):
            selected = [t for t in sales if predicate(t)]
            booked = sum(
                1 for t in selected if t.call_type == "reservation"
            )
            return booked / len(selected)

        assert rate(lambda t: t.intent == "strong") == pytest.approx(
            0.63, abs=0.08
        )
        assert rate(lambda t: t.intent == "weak") == pytest.approx(
            0.32, abs=0.08
        )
        assert rate(lambda t: t.used_discount) == pytest.approx(
            0.72, abs=0.10
        )

    def test_city_vehicle_preference_planted(self, corpus):
        # Seattle's dominant type (weight 6) should clearly beat its
        # rarest (weight 1) in the generated calls.
        seattle = [
            t for t in corpus.truths.values() if t.city == "seattle"
        ]
        if len(seattle) < 30:
            pytest.skip("too few seattle calls at this corpus size")
        suv = sum(1 for t in seattle if t.car_type == "suv")
        luxury = sum(1 for t in seattle if t.car_type == "luxury")
        assert suv > luxury

    def test_weights_table_covers_all_cities(self, corpus):
        cities = {t.city for t in corpus.truths.values()}
        assert cities <= set(CITY_VEHICLE_WEIGHTS)


class TestTrainingIntervention:
    def test_trained_agents_flagged(self):
        config = CarRentalConfig(
            n_agents=10,
            n_days=1,
            calls_per_agent_per_day=2,
            n_customers=30,
            trained_agent_ids=frozenset({0, 1}),
        )
        corpus = generate_car_rental(config)
        trained = [a for a in corpus.agents if a.trained]
        assert {a.agent_id for a in trained} == {0, 1}

    def test_training_raises_discount_rate_for_weak(self):
        config = CarRentalConfig()
        from repro.synth.carrental import AgentProfile

        agent = AgentProfile(0, "x y", skill=0.5, logit_offset=0.0)
        base_v, base_d = agent.utterance_rates(
            "weak", config.behaviour, config.training
        )
        agent.trained = True
        boosted_v, boosted_d = agent.utterance_rates(
            "weak", config.behaviour, config.training
        )
        assert boosted_v > base_v
        assert boosted_d > base_d

    def test_solve_training_scale_hits_target(self):
        from repro.synth.calibration import calibrate_outcome_model

        model = calibrate_outcome_model()
        behaviour = BehaviourRates()
        effect = TrainingEffect()
        scale = solve_training_scale(
            model, behaviour, effect, target_delta=0.03
        )
        assert 0.0 < scale <= 1.0
        # Verify the scaled effect indeed delivers ~3 points.
        scaled = effect.scaled(scale)
        boosted = BehaviourRates(
            value_selling_given_strong=min(
                behaviour.value_selling_given_strong
                + scaled.value_selling_boost,
                0.98,
            ),
            value_selling_given_weak=min(
                behaviour.value_selling_given_weak
                + scaled.value_selling_boost,
                0.98,
            ),
            discount_given_strong=behaviour.discount_given_strong,
            discount_given_weak=min(
                behaviour.discount_given_weak + scaled.discount_weak_boost,
                0.98,
            ),
        )
        delta = model.expected_booking_rate(
            boosted
        ) - model.expected_booking_rate(behaviour)
        if scale < 1.0:
            assert delta == pytest.approx(0.03, abs=2e-3)
