"""Tests for the outcome-model calibration solver."""

import pytest

from repro.synth.calibration import (
    BehaviourRates,
    CalibratedOutcomeModel,
    OutcomeTargets,
    calibrate_outcome_model,
)


@pytest.fixture(scope="module")
def model():
    return calibrate_outcome_model()


class TestCalibration:
    def test_hits_paper_marginals(self, model):
        implied = model.implied_marginals()
        assert implied["book_given_strong"] == pytest.approx(0.63, abs=5e-3)
        assert implied["book_given_weak"] == pytest.approx(0.32, abs=5e-3)
        assert implied["book_given_value_selling"] == pytest.approx(
            0.59, abs=5e-3
        )
        assert implied["book_given_discount"] == pytest.approx(0.72, abs=5e-3)

    def test_effects_positive(self, model):
        # The paper finds both value selling and discounts help bookings.
        assert model.effect_value_selling > 0
        assert model.effect_discount > 0

    def test_strong_start_helps(self, model):
        assert model.theta_strong > model.theta_weak

    def test_probability_monotone_in_actions(self, model):
        base = model.probability("weak", False, False)
        with_discount = model.probability("weak", False, True)
        with_both = model.probability("weak", True, True)
        assert base < with_discount < with_both

    def test_probability_unknown_intent(self, model):
        with pytest.raises(ValueError):
            model.probability("confused", False, False)

    def test_custom_targets(self):
        targets = OutcomeTargets(
            book_given_strong=0.7,
            book_given_weak=0.25,
            book_given_value_selling=0.6,
            book_given_discount=0.65,
        )
        model = calibrate_outcome_model(targets=targets)
        implied = model.implied_marginals()
        assert implied["book_given_strong"] == pytest.approx(0.7, abs=5e-3)

    def test_expected_rate_responds_to_behaviour(self, model):
        base = model.expected_booking_rate(BehaviourRates())
        boosted = model.expected_booking_rate(
            BehaviourRates(
                value_selling_given_strong=0.8,
                value_selling_given_weak=0.8,
                discount_given_weak=0.7,
            )
        )
        assert boosted > base + 0.01


class TestBehaviourRates:
    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            BehaviourRates(p_strong=0.0)
        with pytest.raises(ValueError):
            BehaviourRates(discount_given_weak=1.0)


class TestImpliedMarginals:
    def test_probabilities_in_unit_interval(self, model):
        implied = model.implied_marginals()
        for value in implied.values():
            assert 0.0 < value < 1.0

    def test_overall_rate_between_conditionals(self, model):
        implied = model.implied_marginals()
        assert (
            implied["book_given_weak"]
            < implied["overall_booking_rate"]
            < implied["book_given_strong"]
        )

    def test_marginals_under_alternative_behaviour(self, model):
        shifted = model.implied_marginals(
            BehaviourRates(discount_given_weak=0.6)
        )
        # More discounts to weak starts raises the weak-start book rate.
        base = model.implied_marginals()
        assert shifted["book_given_weak"] > base["book_given_weak"]
