"""Tests for the telecom churn corpus generator."""

import pytest

from repro.synth.telecom import TelecomConfig, generate_telecom


@pytest.fixture(scope="module")
def corpus():
    return generate_telecom(TelecomConfig(scale=0.01, n_customers=500))


class TestVolumes:
    def test_email_and_sms_counts_scale(self, corpus):
        config = corpus.config
        assert len(corpus.emails) == config.n_emails
        assert len(corpus.sms) == config.n_sms
        # SMS volume dominates email volume, as in the paper.
        assert len(corpus.sms) > 4 * len(corpus.emails)

    def test_full_scale_matches_paper_volumes(self):
        config = TelecomConfig(scale=1.0)
        assert config.n_emails == 47460
        assert config.n_sms == 289314


class TestProportions:
    def test_churner_share_of_customer_emails(self, corpus):
        customer_emails = [
            m for m in corpus.emails if m.sender_entity_id is not None
        ]
        share = sum(1 for m in customer_emails if m.from_churner) / len(
            customer_emails
        )
        assert share == pytest.approx(0.03, abs=0.02)

    def test_churner_share_of_customer_sms(self, corpus):
        customer_sms = [
            m for m in corpus.sms if m.sender_entity_id is not None
        ]
        share = sum(1 for m in customer_sms if m.from_churner) / len(
            customer_sms
        )
        assert share == pytest.approx(0.076, abs=0.02)

    def test_non_customer_email_share(self, corpus):
        non_spam = [m for m in corpus.emails if not m.is_spam]
        unlinked = sum(
            1 for m in non_spam if m.sender_entity_id is None
        ) / len(non_spam)
        assert unlinked == pytest.approx(0.18, abs=0.05)

    def test_prepaid_share(self, corpus):
        customers = corpus.database.table("customers")
        prepaid = sum(
            1 for c in customers if c["plan_type"] == "prepaid"
        ) / len(customers)
        assert prepaid == pytest.approx(0.78, abs=0.06)


class TestContent:
    def test_churner_messages_carry_more_drivers(self, corpus):
        churner = [m for m in corpus.messages if m.from_churner]
        non_churner = [
            m
            for m in corpus.messages
            if not m.from_churner and m.sender_entity_id is not None
        ]
        churner_rate = sum(len(m.driver_keys) for m in churner) / len(churner)
        other_rate = sum(len(m.driver_keys) for m in non_churner) / len(
            non_churner
        )
        assert churner_rate > 2 * other_rate

    def test_email_has_headers_and_disclaimer(self, corpus):
        email = next(
            m for m in corpus.emails if m.sender_entity_id is not None
        )
        assert email.raw_text.startswith("from:")
        assert "subject:" in email.raw_text

    def test_customer_email_carries_identity(self, corpus):
        customers = corpus.database.table("customers")
        linked = [
            m for m in corpus.emails if m.sender_entity_id is not None
        ]
        for email in linked[:30]:
            sender = customers.get(email.sender_entity_id)
            assert sender["name"] in email.raw_text
            assert sender["phone"] in email.raw_text

    def test_spam_flagged(self, corpus):
        spam = [m for m in corpus.emails if m.is_spam]
        assert spam
        for message in spam:
            assert message.sender_entity_id is None

    def test_non_english_sms_present(self, corpus):
        assert any(m.is_non_english for m in corpus.sms)

    def test_churn_month_only_for_churners(self, corpus):
        for customer in corpus.database.table("customers"):
            if customer["churned"]:
                assert customer["churn_month"] is not None
            else:
                assert customer["churn_month"] is None

    def test_deterministic(self):
        config = TelecomConfig(scale=0.002, n_customers=100)
        a = generate_telecom(config)
        b = generate_telecom(config)
        assert [m.raw_text for m in a.messages] == [
            m.raw_text for m in b.messages
        ]
