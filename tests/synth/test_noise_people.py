"""Tests for the text noiser, person generator and spoken renderings."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.synth.banking import generate_banking_calls
from repro.synth.noise import NoiseConfig, TextNoiser
from repro.synth.people import (
    PersonGenerator,
    spoken_date,
    spoken_number,
    spoken_phone,
)


class TestTextNoiser:
    def test_zero_noise_is_identity(self):
        noiser = TextNoiser(NoiseConfig.clean(), seed=1)
        text = "please confirm the receipt of payment"
        assert noiser.apply(text) == text

    def test_sms_noise_applies_lingo(self):
        noiser = TextNoiser(NoiseConfig(lingo_rate=1.0, typo_rate=0.0),
                            seed=1)
        assert noiser.apply("please confirm") == "pls confrm"

    def test_typos_change_text(self):
        noiser = TextNoiser(NoiseConfig(typo_rate=1.0), seed=3)
        clean = "the quick brown fox jumps over the lazy dog"
        assert noiser.apply(clean) != clean

    def test_deterministic_per_seed(self):
        text = "please confirm the receipt of payment for the account"
        a = TextNoiser(NoiseConfig.for_sms(), seed=5).apply(text)
        b = TextNoiser(NoiseConfig.for_sms(), seed=5).apply(text)
        assert a == b

    def test_truncation_shortens(self):
        config = NoiseConfig(typo_rate=0.0, truncation_rate=1.0)
        noiser = TextNoiser(config, seed=1)
        text = " ".join(["word"] * 20)
        assert len(noiser.apply(text).split()) < 20

    def test_multilingual_fragment_appended(self):
        config = NoiseConfig(typo_rate=0.0, multilingual_rate=1.0)
        noiser = TextNoiser(config, seed=1)
        out = noiser.apply("my bill is too high")
        assert len(out.split()) > 5

    def test_empty_text(self):
        noiser = TextNoiser(NoiseConfig.for_sms(), seed=1)
        assert noiser.apply("") == ""

    @given(st.text(alphabet="abcdefgh ", min_size=1, max_size=60))
    def test_never_raises(self, text):
        noiser = TextNoiser(NoiseConfig.for_sms(), seed=2)
        noiser.apply(text)

    def test_corrupt_word_keeps_short_words(self):
        noiser = TextNoiser(NoiseConfig(), seed=1)
        assert noiser.corrupt_word("a") == "a"


class TestPersonGenerator:
    def test_unique_phones(self):
        people = PersonGenerator(seed=1).generate_many(200)
        phones = [p.phone for p in people]
        assert len(set(phones)) == len(phones)

    def test_phone_shape(self):
        person = PersonGenerator(seed=2).generate()
        assert len(person.phone) == 10
        assert person.phone.isdigit()
        assert person.phone[0] != "0"

    def test_dob_iso_format(self):
        person = PersonGenerator(seed=3).generate()
        year, month, day = person.dob.split("-")
        assert 1945 <= int(year) <= 1994
        assert 1 <= int(month) <= 12
        assert 1 <= int(day) <= 28

    def test_deterministic(self):
        a = PersonGenerator(seed=4).generate_many(10)
        b = PersonGenerator(seed=4).generate_many(10)
        assert a == b

    def test_name_is_first_plus_last(self):
        person = PersonGenerator(seed=5).generate()
        assert person.name == f"{person.first_name} {person.last_name}"


class TestSpokenRenderings:
    def test_spoken_phone(self):
        assert spoken_phone("42") == "four two"

    def test_spoken_phone_ignores_punctuation(self):
        assert spoken_phone("4-2") == "four two"

    def test_spoken_number_teens(self):
        assert spoken_number(14) == "fourteen"

    def test_spoken_number_composite(self):
        assert spoken_number(42) == "forty two"

    def test_spoken_number_tens(self):
        assert spoken_number(70) == "seventy"

    def test_spoken_number_out_of_range(self):
        with pytest.raises(ValueError):
            spoken_number(100)

    def test_spoken_date(self):
        assert spoken_date("1972-04-08") == (
            "april eight nineteen seventy two"
        )


class TestBankingCalls:
    def test_count_and_shape(self):
        calls = generate_banking_calls(n_calls=10, seed=1)
        assert len(calls) == 10
        for call in calls:
            assert call.text
            speakers = {speaker for speaker, _ in call.turns}
            assert speakers == {"agent", "customer"}

    def test_deterministic(self):
        a = generate_banking_calls(n_calls=5, seed=9)
        b = generate_banking_calls(n_calls=5, seed=9)
        assert [c.text for c in a] == [c.text for c in b]
