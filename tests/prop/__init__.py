"""Seeded property-based differential tests (repro.prop harness)."""
