"""25 seeded differential cases + the generator's own guarantees.

Each seed draws a random corpus and configuration, then asserts the
four equivalence oracles in :func:`repro.prop.check_equivalences`:
sharded == single-index, every backend == serial, crash/resume ==
uninterrupted, traced == untraced.  A failing seed prints a one-line
``bivoc prop --seed N`` reproduction command.
"""

import pytest

from repro.exec import BACKEND_KINDS
from repro.prop import check_equivalences, describe_case, generate_case
from repro.prop.harness import _check, make_documents

N_SEEDS = 25


class TestEquivalences:
    """The harness oracle over a fixed band of seeds."""

    @pytest.mark.parametrize("seed", range(N_SEEDS))
    def test_seed(self, seed):
        check_equivalences(seed)


class TestCaseGenerator:
    """Determinism and coverage of the seeded case generator."""

    def test_same_seed_same_case(self):
        assert generate_case(7) == generate_case(7)
        assert describe_case(7) == describe_case(7)

    def test_distinct_seeds_vary(self):
        cases = {generate_case(seed) for seed in range(N_SEEDS)}
        assert len(cases) > N_SEEDS // 2

    def test_band_covers_every_backend(self):
        drawn = {
            generate_case(seed).backend for seed in range(N_SEEDS)
        }
        assert drawn == set(BACKEND_KINDS)

    def test_band_covers_multiple_shard_counts(self):
        drawn = {generate_case(seed).shards for seed in range(N_SEEDS)}
        assert len(drawn) >= 4

    def test_documents_are_deterministic(self):
        case = generate_case(3)
        first = [
            (d.doc_id, d.channel, d.text, d.artifacts)
            for d in make_documents(case)
        ]
        second = [
            (d.doc_id, d.channel, d.text, d.artifacts)
            for d in make_documents(case)
        ]
        assert first == second
        assert len(first) == case.n_docs

    def test_case_bounds(self):
        for seed in range(N_SEEDS):
            case = generate_case(seed)
            assert 24 <= case.n_docs <= 96
            assert 1 <= case.shards <= 8
            assert 2 <= case.workers <= 4
            assert case.backend in BACKEND_KINDS
            assert case.channels == tuple(sorted(case.channels))


class TestFailureReporting:
    """A violated property must hand the user a repro command."""

    def test_check_mismatch_prints_repro_line(self):
        case = generate_case(5)
        with pytest.raises(AssertionError) as err:
            _check("unit-test-property", {"a": 1}, {"a": 2}, case)
        message = str(err.value)
        assert "property violated: unit-test-property" in message
        assert "bivoc prop --seed 5" in message
        assert "a" in message
