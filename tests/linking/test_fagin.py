"""Tests for Fagin/Threshold/scan ranked-list merges."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.linking.fagin import fagin_merge, full_scan_merge, threshold_merge

LISTS = [
    [("a", 0.9), ("b", 0.8), ("c", 0.1)],
    [("b", 0.95), ("a", 0.5), ("d", 0.4)],
]

ALL_MERGES = [fagin_merge, threshold_merge, full_scan_merge]


def ranked_lists_strategy():
    keys = st.sampled_from(["a", "b", "c", "d", "e", "f"])
    entry = st.tuples(keys, st.floats(0.0, 1.0))

    def sort_unique(entries):
        best = {}
        for key, score in entries:
            best[key] = max(best.get(key, 0.0), score)
        return sorted(best.items(), key=lambda pair: -pair[1])

    one_list = st.lists(entry, min_size=0, max_size=6).map(sort_unique)
    return st.lists(one_list, min_size=1, max_size=4)


class TestMergesAgree:
    @pytest.mark.parametrize("merge", ALL_MERGES)
    def test_top1(self, merge):
        result = merge(LISTS, k=1)
        assert result.top[0] == "b"  # 0.8 + 0.95 = 1.75
        assert result.top[1] == pytest.approx(1.75)

    @pytest.mark.parametrize("merge", ALL_MERGES)
    def test_weighted(self, merge):
        result = merge(LISTS, weights=[10.0, 0.1], k=1)
        assert result.top[0] == "a"  # first list dominates

    @pytest.mark.parametrize("merge", ALL_MERGES)
    def test_top2_ordering(self, merge):
        result = merge(LISTS, k=2)
        keys = [key for key, _ in result.ranked]
        assert keys == ["b", "a"]

    @given(ranked_lists_strategy())
    def test_all_three_agree_on_top1(self, lists):
        results = [merge(lists, k=1).top for merge in ALL_MERGES]
        scores = [r[1] if r else None for r in results]
        if scores[0] is None:
            assert all(s is None for s in scores)
        else:
            for score in scores[1:]:
                assert score == pytest.approx(scores[0])

    @given(ranked_lists_strategy())
    def test_threshold_never_more_sequential_than_scan(self, lists):
        ta = threshold_merge(lists, k=1)
        scan = full_scan_merge(lists, k=1)
        assert ta.sequential_accesses <= scan.sequential_accesses


class TestEdgeCases:
    @pytest.mark.parametrize("merge", ALL_MERGES)
    def test_empty_lists(self, merge):
        assert merge([], k=1).ranked == []

    @pytest.mark.parametrize("merge", [fagin_merge, threshold_merge])
    def test_all_empty_sublists(self, merge):
        assert merge([[], []], k=1).ranked == []

    def test_weight_count_validated(self):
        with pytest.raises(ValueError):
            fagin_merge(LISTS, weights=[1.0])
        with pytest.raises(ValueError):
            threshold_merge(LISTS, weights=[1.0, 2.0, 3.0])

    def test_missing_key_scores_zero(self):
        # "d" appears only in list 2; aggregate must not crash.
        result = full_scan_merge(LISTS, k=4)
        scores = dict(result.ranked)
        assert scores["d"] == pytest.approx(0.4)

    def test_single_list(self):
        result = threshold_merge([[("x", 0.5), ("y", 0.4)]], k=1)
        assert result.top == ("x", 0.5)


class TestAccessAccounting:
    def test_threshold_early_stop_saves_accesses(self):
        # A clear winner at the head of both lists lets TA stop early.
        lists = [
            [("w", 1.0)] + [(f"x{i}", 0.01) for i in range(50)],
            [("w", 1.0)] + [(f"y{i}", 0.01) for i in range(50)],
        ]
        ta = threshold_merge(lists, k=1)
        scan = full_scan_merge(lists, k=1)
        assert ta.sequential_accesses < scan.sequential_accesses / 5
        assert ta.top[0] == "w"
