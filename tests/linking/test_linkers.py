"""Tests for single-type and multi-type entity linking and EM weights."""

import pytest

from repro.linking.em import learn_weights_em
from repro.linking.evaluation import LinkingReport, evaluate_linker
from repro.linking.multi import MultiTypeLinker
from repro.linking.single import EntityLinker
from repro.store.database import Database
from repro.store.schema import AttributeType, Schema


@pytest.fixture
def db():
    """Customers + transactions + cards, as in the paper's examples."""
    database = Database()
    customers = database.create_table(
        "customers",
        Schema.build(
            ("name", AttributeType.NAME, True),
            ("phone", AttributeType.PHONE, True),
            ("address", AttributeType.STRING, True),
            ("card_numbers", AttributeType.CARD, True),
        ),
    )
    transactions = database.create_table(
        "transactions",
        Schema.build(
            ("customer_name", AttributeType.NAME, True),
            ("shop_name", AttributeType.STRING, True),
            ("amount", AttributeType.MONEY),
            ("address", AttributeType.STRING, True),
        ),
    )
    cards = database.create_table(
        "cards",
        Schema.build(
            ("number", AttributeType.CARD, True),
            ("holder_name", AttributeType.NAME, True),
        ),
    )
    customers.insert_many(
        [
            {
                "name": "john smith",
                "phone": "5558675309",
                "address": "12 elm street boston",
                "card_numbers": "4111111111111111 4222222222222222",
            },
            {
                "name": "mary walker",
                "phone": "4441239999",
                "address": "9 oak avenue seattle",
                "card_numbers": "4333333333333333",
            },
        ]
    )
    transactions.insert_many(
        [
            {
                "customer_name": "john smith",
                "shop_name": "quick mart",
                "amount": 275,
                "address": "12 elm street boston",
            },
            {
                "customer_name": "mary walker",
                "shop_name": "garden store",
                "amount": 42,
                "address": "9 oak avenue seattle",
            },
        ]
    )
    cards.insert_many(
        [
            {"number": "4111111111111111", "holder_name": "john smith"},
            {"number": "4222222222222222", "holder_name": "john smith"},
            {"number": "4333333333333333", "holder_name": "mary walker"},
        ]
    )
    database.build_indexes()
    return database


class TestEntityLinker:
    def test_links_clean_document(self, db):
        linker = EntityLinker(db, "customers")
        result = linker.link("hello my name is john smith")
        assert result.linked
        assert result.entity["name"] == "john smith"

    def test_links_noisy_name_with_phone(self, db):
        linker = EntityLinker(db, "customers")
        result = linker.link("this is jon smyth my number is 5558675301")
        assert result.entity["name"] == "john smith"

    def test_partial_phone_only(self, db):
        linker = EntityLinker(db, "customers")
        result = linker.link("please call back on 8675309")
        assert result.entity["name"] == "john smith"

    def test_no_tokens_no_link(self, db):
        linker = EntityLinker(db, "customers")
        result = linker.link("the weather is nice today")
        assert not result.linked
        assert result.ranked == []

    def test_min_score_gate(self, db):
        linker = EntityLinker(db, "customers", min_score=5.0)
        result = linker.link("my name is john smith")
        assert not result.linked

    def test_top_identities(self, db):
        linker = EntityLinker(db, "customers")
        top = linker.top_identities("smith or walker maybe", n=2)
        names = {e["name"] for e in top}
        assert names == {"john smith", "mary walker"}

    def test_weights_change_ranking(self, db):
        # Make a doc ambiguous between name evidence for mary and phone
        # evidence for john, then tilt with weights.
        doc = "mary walker here my number is 5558675309"
        name_heavy = EntityLinker(
            db, "customers", weights={"name": 5.0, "phone": 0.1}
        ).link(doc)
        phone_heavy = EntityLinker(
            db, "customers", weights={"name": 0.1, "phone": 5.0}
        ).link(doc)
        assert name_heavy.entity["name"] == "mary walker"
        assert phone_heavy.entity["name"] == "john smith"

    def test_invalid_merge_strategy(self, db):
        with pytest.raises(ValueError):
            EntityLinker(db, "customers", merge="magic")

    def test_merge_strategies_agree(self, db):
        doc = "jon smith 5558675309"
        results = {
            merge: EntityLinker(db, "customers", merge=merge).link(doc)
            for merge in ("fagin", "threshold", "scan")
        }
        entities = {r.entity.entity_id for r in results.values()}
        assert len(entities) == 1


class TestMultiTypeLinker:
    def test_customer_document_resolves_to_customer(self, db):
        linker = MultiTypeLinker(
            db, ["customers", "transactions", "cards"]
        )
        result = linker.link(
            "my name is john smith my phone is 5558675309"
        )
        assert result.table_name == "customers"

    def test_transaction_document_resolves_to_transaction(self, db):
        linker = MultiTypeLinker(db, ["customers", "transactions"])
        result = linker.link(
            "the purchase at quick mart for 275 dollars by john smith"
        )
        assert result.table_name == "transactions"

    def test_multi_card_document_aggregates_to_customer(self, db):
        """The paper's key example: a document listing several credit
        cards looks like a card document, but each card points to a
        different card entity while all point to the same customer —
        the aggregate favours the customer."""
        linker = MultiTypeLinker(db, ["customers", "cards"])
        result = linker.link(
            "my cards are 4111111111111111 and 4222222222222222"
        )
        assert result.table_name == "customers"
        assert result.entity["name"] == "john smith"
        # Each card list individually still ranked a card entity.
        assert result.per_table["cards"].linked

    def test_weights_respected(self, db):
        linker = MultiTypeLinker(
            db,
            ["customers", "transactions"],
            weights={
                ("name", "customers"): 0.01,
                ("customer_name", "transactions"): 5.0,
            },
        )
        result = linker.link("john smith")
        assert result.table_name == "transactions"

    def test_no_tables_rejected(self, db):
        with pytest.raises(ValueError):
            MultiTypeLinker(db, [])

    def test_unlinked_document(self, db):
        linker = MultiTypeLinker(db, ["customers"])
        result = linker.link("nothing to see here")
        assert not result.linked


class TestEMWeights:
    def make_corpus(self):
        return [
            "my name is john smith phone 5558675309",
            "mary walker here my number is 4441239999",
            "transaction at quick mart for 275 dollars",
            "purchase at garden store for 42 dollars",
            "my name is john smith",
            "mary walker address 9 oak avenue seattle",
        ]

    def test_em_produces_bounded_positive_weights(self, db):
        linker = MultiTypeLinker(db, ["customers", "transactions"])
        weights = learn_weights_em(linker, self.make_corpus(), iterations=3)
        # Weights stay positive and bounded by the schema width; the
        # evidence-bearing attributes sit near 1 on average.
        for (attribute, table), weight in weights.items():
            schema_width = len(linker.linker_for(table).table.schema)
            assert 0.0 < weight <= schema_width

    def test_em_weights_cover_every_pair(self, db):
        linker = MultiTypeLinker(db, ["customers", "transactions"])
        weights = learn_weights_em(linker, self.make_corpus(), iterations=2)
        for table in ("customers", "transactions"):
            schema = linker.linker_for(table).table.schema
            for attr in schema:
                assert (attr.name, table) in weights

    def test_em_emphasises_discriminative_attributes(self, db):
        linker = MultiTypeLinker(db, ["customers", "transactions"])
        weights = learn_weights_em(linker, self.make_corpus(), iterations=4)
        # Names and phones drive customer documents; shop/amount drive
        # transaction documents.
        assert weights[("name", "customers")] > weights[
            ("card_numbers", "customers")
        ]

    def test_em_empty_corpus_rejected(self, db):
        linker = MultiTypeLinker(db, ["customers"])
        with pytest.raises(ValueError):
            learn_weights_em(linker, [])


class TestEvaluation:
    def test_evaluate_with_list_truth(self, db):
        linker = EntityLinker(db, "customers")
        docs = ["john smith", "mary walker", "no identity at all"]
        report = evaluate_linker(linker, docs, [0, 1, None])
        assert report.correct == 2
        assert report.attempted == 2
        assert report.recall == pytest.approx(2 / 3)
        assert report.precision == 1.0

    def test_evaluate_with_callable_truth(self, db):
        linker = EntityLinker(db, "customers")
        report = evaluate_linker(
            linker, ["john smith"], lambda i, d: 0
        )
        assert report.correct == 1

    def test_truth_alignment_checked(self, db):
        linker = EntityLinker(db, "customers")
        with pytest.raises(ValueError):
            evaluate_linker(linker, ["a", "b"], [0])

    def test_empty_report_properties(self):
        report = LinkingReport(0, 0, 0)
        assert report.precision == 0.0
        assert report.recall == 0.0
        assert report.f1 == 0.0
        assert report.linked_fraction == 0.0
