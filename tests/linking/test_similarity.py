"""Tests for the per-attribute similarity measures."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.linking.similarity import (
    SimilarityRegistry,
    date_similarity,
    default_registry,
    digits_similarity,
    exact_similarity,
    name_similarity,
    numeric_similarity,
    string_similarity,
)
from repro.store.schema import AttributeType


class TestNameSimilarity:
    def test_identical(self):
        assert name_similarity("john smith", "john smith") == pytest.approx(
            1.0
        )

    def test_partial_recognition_surname_only(self):
        # "only the surname or the given name may get recognized"
        assert name_similarity("smith", "john smith") > 0.9

    def test_similar_sounding_substitution(self):
        assert name_similarity("jon smith", "john smith") > 0.8

    def test_unrelated(self):
        assert name_similarity("mary walker", "john smith") < 0.6

    def test_empty(self):
        assert name_similarity("", "john smith") == 0.0

    def test_word_order_insensitive(self):
        assert name_similarity("smith john", "john smith") == pytest.approx(
            1.0
        )


class TestDigitsSimilarity:
    def test_identical(self):
        assert digits_similarity("5558675309", "5558675309") == 1.0

    def test_partial_six_of_ten(self):
        # The paper's canonical case: 6 of 10 digits recognised.
        assert digits_similarity("867530", "5558675309") >= 0.6

    def test_substituted_digits_still_score(self):
        assert digits_similarity("5558675301", "5558675309") >= 0.9

    def test_formatting_ignored(self):
        assert digits_similarity("(555) 867-5309", "5558675309") == 1.0

    def test_no_digits(self):
        assert digits_similarity("abc", "5558675309") == 0.0

    @given(st.text(alphabet="0123456789", min_size=1, max_size=12))
    def test_self_similarity_one(self, digits):
        assert digits_similarity(digits, digits) == 1.0


class TestDateSimilarity:
    def test_exact(self):
        assert date_similarity("1972-04-08", "1972-04-08") == 1.0

    def test_one_component_wrong(self):
        assert date_similarity("1972-04-09", "1972-04-08") == pytest.approx(
            2 / 3
        )

    def test_non_iso_falls_back_to_exact(self):
        assert date_similarity("april 8", "april 8") == 1.0
        assert date_similarity("april 8", "1972-04-08") == 0.0


class TestNumericSimilarity:
    def test_exact(self):
        assert numeric_similarity("42", "42") == 1.0

    def test_close_values(self):
        assert numeric_similarity("100", "95") > 0.9

    def test_far_values(self):
        assert numeric_similarity("10", "1000") < 0.1

    def test_comma_separators(self):
        assert numeric_similarity("2,013", "2013") == 1.0

    def test_non_numeric(self):
        assert numeric_similarity("abc", "42") == 0.0


class TestRegistry:
    def test_default_measures_wired(self):
        registry = default_registry()
        assert registry.measure_for(AttributeType.NAME) is name_similarity
        assert (
            registry.measure_for(AttributeType.PHONE) is digits_similarity
        )

    def test_none_attribute_scores_zero(self):
        registry = default_registry()
        assert registry.similarity(AttributeType.NAME, "john", None) == 0.0

    def test_custom_measure_plugs_in(self):
        registry = SimilarityRegistry()
        registry.register(AttributeType.NAME, lambda a, b: 0.42)
        assert registry.similarity(
            AttributeType.NAME, "x", "y"
        ) == pytest.approx(0.42)

    def test_unregistered_type_uses_string_fallback(self):
        registry = SimilarityRegistry()
        assert registry.measure_for(AttributeType.PLACE) is string_similarity

    def test_exact_similarity(self):
        assert exact_similarity("SUV", "suv") == 1.0
        assert exact_similarity("suv", "sedan") == 0.0
