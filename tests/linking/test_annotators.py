"""Tests for the typed-token annotators."""

import pytest

from repro.linking.annotators import (
    AmountAnnotator,
    AnnotatorSuite,
    CardAnnotator,
    DateAnnotator,
    NameAnnotator,
    PhoneAnnotator,
    build_default_annotators,
)
from repro.store.schema import AttributeType


class TestNameAnnotator:
    def test_adjacent_name_words_grouped(self):
        tokens = NameAnnotator().annotate("my name is john smith thanks")
        assert any(t.value == "john smith" for t in tokens)

    def test_lone_surname(self):
        tokens = NameAnnotator().annotate("this is smith calling")
        assert any(t.value == "smith" for t in tokens)

    def test_no_names(self):
        assert NameAnnotator().annotate("the rate is too high") == []

    def test_case_insensitive(self):
        tokens = NameAnnotator().annotate("MY NAME IS JOHN SMITH")
        assert any("john" in t.value for t in tokens)

    def test_typed_as_name(self):
        for token in NameAnnotator().annotate("john smith"):
            assert token.attr_type is AttributeType.NAME


class TestPhoneAnnotator:
    def test_written_digits(self):
        tokens = PhoneAnnotator().annotate("call me at 5558675309 please")
        assert any(t.value == "5558675309" for t in tokens)

    def test_spoken_digit_words(self):
        text = "my number is five five five eight six seven five three"
        tokens = PhoneAnnotator().annotate(text)
        assert any(t.value == "55586753" for t in tokens)

    def test_short_runs_ignored(self):
        assert PhoneAnnotator().annotate("i have two three cars") == []

    def test_interrupted_runs_split(self):
        text = "five five five stop eight six seven five three zero nine"
        tokens = PhoneAnnotator().annotate(text)
        values = {t.value for t in tokens}
        assert "8675309" in values
        assert "555" not in values  # below min_digits


class TestDateAnnotator:
    def test_iso_date(self):
        tokens = DateAnnotator().annotate("born 1972-04-08 in boston")
        assert any(t.value == "1972-04-08" for t in tokens)

    def test_spoken_date(self):
        text = "my date of birth is april eight nineteen seventy two"
        tokens = DateAnnotator().annotate(text)
        assert any(t.value == "1972-04-08" for t in tokens)

    def test_spoken_date_compound_day(self):
        text = "born on march twenty three nineteen eighty"
        tokens = DateAnnotator().annotate(text)
        assert any(t.value == "1980-03-23" for t in tokens)

    def test_month_without_year_ignored(self):
        assert DateAnnotator().annotate("i will come in april maybe") == []


class TestAmountAnnotator:
    def test_currency_prefix(self):
        tokens = AmountAnnotator().annotate("payment of rs. 500 received")
        assert any(t.value == "500" for t in tokens)

    def test_dollar_suffix(self):
        tokens = AmountAnnotator().annotate("it costs 42 dollars per day")
        assert any(t.value == "42" for t in tokens)

    def test_spoken_amount(self):
        tokens = AmountAnnotator().annotate("just forty two dollars")
        assert any(t.value == "42" for t in tokens)


class TestCardAnnotator:
    def test_sixteen_digit_card(self):
        tokens = CardAnnotator().annotate("card 4111 1111 1111 1111 charged")
        assert any(t.value == "4111111111111111" for t in tokens)

    def test_ten_digit_phone_not_card(self):
        # A bare 10-digit phone number must not be typed as a card.
        tokens = CardAnnotator().annotate("call 5558675309")
        assert tokens == []


class TestAnnotatorSuite:
    def test_default_suite_extracts_multiple_types(self):
        suite = build_default_annotators()
        text = (
            "my name is john smith my number is 5558675309 and my date "
            "of birth is 1972-04-08"
        )
        types = {t.attr_type for t in suite.annotate(text)}
        assert {
            AttributeType.NAME,
            AttributeType.PHONE,
            AttributeType.DATE,
        } <= types

    def test_tokens_of_type(self):
        suite = build_default_annotators()
        names = suite.tokens_of_type("john smith said hi", AttributeType.NAME)
        assert names and all(
            t.attr_type is AttributeType.NAME for t in names
        )

    def test_empty_suite_rejected(self):
        with pytest.raises(ValueError):
            AnnotatorSuite([])
