"""Tests for the assembled BIVoC pipeline."""

import pytest

from repro.core.config import BIVoCConfig
from repro.core.pipeline import BIVoCSystem, CallRecordLinker
from repro.synth.carrental import CarRentalConfig, generate_car_rental


@pytest.fixture(scope="module")
def corpus():
    return generate_car_rental(
        CarRentalConfig(
            n_agents=12,
            n_days=3,
            calls_per_agent_per_day=4,
            n_customers=120,
            seed=7,
        )
    )


@pytest.fixture(scope="module")
def clean_analysis(corpus):
    system = BIVoCSystem(BIVoCConfig(use_asr=False, link_mode="content"))
    return system.process_call_center(corpus)


class TestConfig:
    def test_invalid_link_mode(self):
        with pytest.raises(ValueError):
            BIVoCConfig(link_mode="telepathy")


class TestCallRecordLinker:
    def test_links_clean_transcript_to_right_record(self, corpus):
        linker = CallRecordLinker(corpus.database)
        transcript = corpus.transcripts[0]
        truth = corpus.truths[transcript.call_id]
        record = linker.link(
            transcript.customer_text, transcript.agent_name, transcript.day
        )
        assert record is not None
        assert record["customer_ref"] == truth.customer_entity_id

    def test_unknown_agent_day_returns_none(self, corpus):
        linker = CallRecordLinker(corpus.database)
        assert linker.link("my name is john", "nobody special", 99) is None

    def test_no_identity_tokens_returns_none(self, corpus):
        linker = CallRecordLinker(corpus.database)
        transcript = corpus.transcripts[0]
        assert (
            linker.link(
                "completely generic words", transcript.agent_name,
                transcript.day,
            )
            is None
        )

    def test_no_candidates_for_known_agent_on_wrong_day(self, corpus):
        # The agent exists, but took no calls on this day: the
        # (agent, day) block is empty before any scoring happens.
        linker = CallRecordLinker(corpus.database)
        transcript = corpus.transcripts[0]
        assert (
            linker.link(
                transcript.customer_text, transcript.agent_name, day=10**6
            )
            is None
        )

    def test_annotator_without_tokens_skips_scoring(self, corpus):
        class SilentAnnotators:
            """Annotator stand-in that never yields identity tokens."""

            def annotate(self, text):
                return []

        linker = CallRecordLinker(
            corpus.database, annotators=SilentAnnotators()
        )
        transcript = corpus.transcripts[0]
        assert (
            linker.link(
                transcript.customer_text,
                transcript.agent_name,
                transcript.day,
            )
            is None
        )

    def test_best_score_below_min_score_rejected(self, corpus):
        transcript = corpus.transcripts[0]
        permissive = CallRecordLinker(corpus.database, min_score=0.0)
        assert (
            permissive.link(
                transcript.customer_text,
                transcript.agent_name,
                transcript.day,
            )
            is not None
        )
        # Same evidence, but the acceptance bar is unreachable: the
        # best-scoring candidate must be rejected, not returned.
        strict = CallRecordLinker(corpus.database, min_score=1e9)
        assert (
            strict.link(
                transcript.customer_text,
                transcript.agent_name,
                transcript.day,
            )
            is None
        )


class TestCleanPipeline:
    def test_all_calls_processed(self, corpus, clean_analysis):
        assert len(clean_analysis.calls) == len(corpus.transcripts)
        assert len(clean_analysis.index) == len(corpus.transcripts)

    def test_link_rate_high_on_clean_text(self, clean_analysis):
        assert clean_analysis.linked_fraction > 0.95

    def test_intent_detection_matches_truth(self, corpus, clean_analysis):
        correct = total = 0
        for call in clean_analysis.calls:
            truth = corpus.truths[call.call_id]
            if truth.intent == "service":
                continue
            total += 1
            if call.detected_intent == truth.intent:
                correct += 1
        assert correct / total > 0.95

    def test_utterance_flags_match_truth(self, corpus, clean_analysis):
        for call in clean_analysis.calls:
            truth = corpus.truths[call.call_id]
            assert call.value_selling == truth.used_value_selling
            assert call.discount == truth.used_discount

    def test_index_carries_structured_fields(self, clean_analysis):
        from repro.mining.index import field_key

        index = clean_analysis.index
        reserved = index.count(field_key("call_type", "reservation"))
        unbooked = index.count(field_key("call_type", "unbooked"))
        assert reserved > 0
        assert unbooked > 0

    def test_metadata_mode_links_everything(self, corpus):
        system = BIVoCSystem(
            BIVoCConfig(use_asr=False, link_mode="metadata")
        )
        analysis = system.process_call_center(corpus)
        assert analysis.linked_fraction == 1.0
        for call in analysis.calls:
            truth = corpus.truths[call.call_id]
            assert call.linked_record["call_type"] == truth.call_type


class TestASRPipeline:
    def test_asr_path_runs_and_degrades_gracefully(self, corpus):
        system = BIVoCSystem(BIVoCConfig(use_asr=True, link_mode="content"))
        analysis = system.process_call_center(corpus)
        # ASR noise reduces but must not destroy linking and detection.
        # Agent+day blocking keeps linking strong even at 45% WER;
        # multi-token intent cues attenuate hard (documented in
        # EXPERIMENTS.md) but a usable subset must survive.
        assert analysis.linked_fraction > 0.8
        assert analysis.stats["intent_detected"] > 0.1 * len(analysis.calls)


class TestBookingRatio:
    def test_overall_ratio_near_calibration(self, corpus):
        ratio = BIVoCSystem.booking_ratio(corpus.database)
        assert 0.35 < ratio < 0.6

    def test_per_agent_ratio(self, corpus):
        agent = corpus.agents[0]
        ratio = BIVoCSystem.booking_ratio(
            corpus.database, agent_name=agent.name
        )
        assert 0.0 <= ratio <= 1.0

    def test_unknown_agent_zero(self, corpus):
        assert (
            BIVoCSystem.booking_ratio(corpus.database, agent_name="ghost")
            == 0.0
        )
