"""Tests for churn-driver analysis and emerging-concept trends."""

import pytest

from repro.core.usecases.churn import analyse_churn_drivers
from repro.mining.index import ConceptIndex, field_key
from repro.mining.trends import emerging_concepts
from repro.synth.telecom import TelecomConfig, generate_telecom


@pytest.fixture(scope="module")
def corpus():
    return generate_telecom(TelecomConfig(scale=0.015, n_customers=900))


class TestChurnDriverAnalysis:
    def test_all_drivers_reported(self, corpus):
        analysis = analyse_churn_drivers(corpus)
        assert set(analysis) == {
            "competitor_tariff",
            "problem_resolution",
            "service_issue",
            "billing_issue",
            "low_awareness",
        }

    def test_every_driver_lifts_for_churners(self, corpus):
        """The generator plants driver language in churner messages;
        the analysis must recover the direction for every driver."""
        analysis = analyse_churn_drivers(corpus)
        for driver, (churner_rate, other_rate, lift) in analysis.items():
            assert churner_rate > other_rate, driver
            assert lift > 1.2, driver

    def test_sorted_by_lift(self, corpus):
        analysis = analyse_churn_drivers(corpus)
        lifts = [lift for _, _, lift in analysis.values()]
        assert lifts == sorted(lifts, reverse=True)

    def test_rates_are_probabilities(self, corpus):
        for churner_rate, other_rate, _ in analyse_churn_drivers(
            corpus
        ).values():
            assert 0.0 <= churner_rate <= 1.0
            assert 0.0 <= other_rate <= 1.0

    def test_requires_both_populations(self):
        lonely = generate_telecom(
            TelecomConfig(
                scale=0.002,
                n_customers=150,
                email_churner_fraction=1e-9,
            )
        )
        with pytest.raises(RuntimeError):
            analyse_churn_drivers(lonely)


class TestEmergingConcepts:
    def test_planted_rising_topic_ranks_first(self):
        index = ConceptIndex()
        doc_id = 0
        # "rising" grows 2,4,6,8 across buckets; "flat" stays 5.
        for bucket in range(4):
            for _ in range(2 * (bucket + 1)):
                index.add(doc_id, fields={"topic": "rising"},
                          timestamp=bucket)
                doc_id += 1
            for _ in range(5):
                index.add(doc_id, fields={"topic": "flat"},
                          timestamp=bucket)
                doc_id += 1
        ranked = emerging_concepts(
            index, ("field", "topic"), buckets=[0, 1, 2, 3]
        )
        assert ranked[0][0] == field_key("topic", "rising")
        assert ranked[0][1] > ranked[1][1]

    def test_min_total_filters_noise(self):
        index = ConceptIndex()
        index.add(0, fields={"topic": "once"}, timestamp=0)
        ranked = emerging_concepts(
            index, ("field", "topic"), min_total=3
        )
        assert ranked == []
