"""Tests for call-type classification and agent-conduct mining."""

import pytest

from repro.core import BIVoCConfig, run_insight_analysis
from repro.core.calltype import (
    CallTypeClassifier,
    evaluate_call_routing,
)
from repro.core.usecases.agent_productivity import (
    conduct_outcome_correlation,
    mine_agent_conduct,
)
from repro.synth.carrental import CarRentalConfig, generate_car_rental


@pytest.fixture(scope="module")
def corpus():
    return generate_car_rental(
        CarRentalConfig(
            n_agents=20,
            n_days=6,
            calls_per_agent_per_day=8,
            n_customers=300,
            seed=4,
        )
    )


class TestCallTypeClassifier:
    @pytest.fixture(scope="class")
    def split(self, corpus):
        texts = [t.text for t in corpus.transcripts]
        labels = [
            corpus.truths[t.call_id].call_type
            for t in corpus.transcripts
        ]
        cut = len(texts) * 3 // 4
        return texts[:cut], labels[:cut], texts[cut:], labels[cut:]

    def test_full_transcript_classification(self, split):
        train_x, train_y, test_x, test_y = split
        classifier = CallTypeClassifier().fit(train_x, train_y)
        report = evaluate_call_routing(classifier, test_x, test_y)
        # Full transcripts contain the outcome language; accuracy is
        # near-perfect.
        assert report.accuracy > 0.9

    def test_confusion_matrix_sums(self, split):
        train_x, train_y, test_x, test_y = split
        classifier = CallTypeClassifier().fit(train_x, train_y)
        report = evaluate_call_routing(classifier, test_x, test_y)
        assert sum(report.confusion.values()) == report.total

    def test_opening_only_routing_finds_service(self, corpus):
        """Routing from the opening utterance: service calls separable,
        reservation-vs-unbooked is not decided yet (that is Table III's
        whole point)."""
        openings = []
        labels = []
        for transcript in corpus.transcripts:
            customer = [
                text
                for speaker, text in transcript.turns
                if speaker == "customer"
            ]
            openings.append(" ".join(customer[:1]))
            labels.append(corpus.truths[transcript.call_id].call_type)
        cut = len(openings) * 3 // 4
        classifier = CallTypeClassifier().fit(
            openings[:cut], labels[:cut]
        )
        service_total = service_hit = 0
        for opening, label in zip(openings[cut:], labels[cut:]):
            predicted = classifier.predict(opening)
            if label == "service":
                service_total += 1
                service_hit += predicted == "service"
        assert service_total > 0
        assert service_hit / service_total > 0.8

    def test_validation(self):
        with pytest.raises(ValueError):
            CallTypeClassifier().fit(["a"], ["x", "y"])
        with pytest.raises(ValueError):
            CallTypeClassifier().fit(["a", "b"], ["x", "x"])
        with pytest.raises(RuntimeError):
            CallTypeClassifier().predict("hello")

    def test_scores_are_probabilities(self, split):
        train_x, train_y, _, _ = split
        classifier = CallTypeClassifier().fit(train_x, train_y)
        scores = classifier.predict_scores(train_x[0])
        assert set(scores) == {"reservation", "unbooked", "service"}
        for value in scores.values():
            assert 0.0 <= value <= 1.0


class TestAgentConduct:
    @pytest.fixture(scope="class")
    def conduct(self, corpus):
        study = run_insight_analysis(
            corpus, BIVoCConfig(use_asr=False, link_mode="content")
        )
        return mine_agent_conduct(study.analysis, corpus.database)

    def test_one_row_per_agent(self, conduct, corpus):
        assert len(conduct) == corpus.config.n_agents

    def test_rates_bounded(self, conduct):
        for row in conduct:
            assert 0.0 <= row.value_selling_rate <= 1.0
            assert 0.0 <= row.discount_rate <= 1.0
            assert 0.0 <= row.booking_ratio <= 1.0

    def test_mined_rates_track_agent_skill(self, conduct, corpus):
        """Agents' mined value-selling rates correlate with their true
        skill parameter (conduct mining sees through to behaviour)."""
        skill_by_name = {
            agent.name: agent.skill for agent in corpus.agents
        }
        paired = [
            (skill_by_name[row.agent_name], row.value_selling_rate)
            for row in conduct
        ]
        # Simple sign check on the covariance.
        mean_skill = sum(s for s, _ in paired) / len(paired)
        mean_rate = sum(r for _, r in paired) / len(paired)
        cov = sum(
            (s - mean_skill) * (r - mean_rate) for s, r in paired
        )
        assert cov > 0

    def test_correlation_requires_three_agents(self):
        with pytest.raises(ValueError):
            conduct_outcome_correlation([])

    def test_correlation_in_valid_range(self, conduct):
        r = conduct_outcome_correlation(conduct)
        assert -1.0 <= r <= 1.0
