"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_tables_defaults(self):
        args = build_parser().parse_args(["tables"])
        assert args.agents == 30
        assert not args.asr

    def test_churn_options(self):
        args = build_parser().parse_args(
            ["churn", "--scale", "0.01", "--channel", "sms"]
        )
        assert args.scale == pytest.approx(0.01)
        assert args.channel == "sms"

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dance"])


class TestCommands:
    def test_tables_runs(self, capsys):
        rc = main(
            ["tables", "--agents", "8", "--days", "2", "--seed", "3"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table III" in out
        assert "Table IV" in out
        assert "Table II" in out

    def test_asr_runs(self, capsys):
        rc = main(["asr", "--seed", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "Names" in out

    def test_churn_runs(self, capsys):
        rc = main(
            ["churn", "--scale", "0.02", "--customers", "1200",
             "--seed", "5"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "detection" in out

    def test_training_runs_small(self, capsys):
        rc = main(["training", "--days", "6", "--seed", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "improvement" in out
