"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_tables_defaults(self):
        args = build_parser().parse_args(["tables"])
        assert args.agents == 30
        assert not args.asr

    def test_churn_options(self):
        args = build_parser().parse_args(
            ["churn", "--scale", "0.01", "--channel", "sms"]
        )
        assert args.scale == pytest.approx(0.01)
        assert args.channel == "sms"

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dance"])


class TestCommands:
    def test_tables_runs(self, capsys):
        rc = main(
            ["tables", "--agents", "8", "--days", "2", "--seed", "3"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table III" in out
        assert "Table IV" in out
        assert "Table II" in out

    def test_asr_runs(self, capsys):
        rc = main(["asr", "--seed", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "Names" in out

    def test_churn_runs(self, capsys):
        rc = main(
            ["churn", "--scale", "0.02", "--customers", "1200",
             "--seed", "5"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "detection" in out

    def test_training_runs_small(self, capsys):
        rc = main(["training", "--days", "6", "--seed", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "improvement" in out


class TestTrace:
    def test_trace_parser_defaults(self):
        args = build_parser().parse_args(["trace", "asr"])
        assert args.trace_format == "chrome"
        assert args.out is None
        assert args.argv == ["asr"]

    def test_trace_wrapper_writes_chrome_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        rc = main([
            "trace", "--out", str(out),
            "tables", "--agents", "6", "--days", "2", "--seed", "3",
        ])
        assert rc == 0
        text = capsys.readouterr().out
        assert "Table III" in text  # the traced command still prints
        assert "trace:" in text and "spans" in text
        document = json.loads(out.read_text())
        events = document["traceEvents"]
        names = {event["name"] for event in events}
        # The stage -> batch -> hot-path hierarchy is all present.
        assert "pipeline:run" in names
        assert "batch" in names
        assert "link:call-record" in names
        assert any(name.startswith("stage:") for name in names)

    def test_trace_flame_format(self, tmp_path, capsys):
        out = tmp_path / "trace.flame"
        rc = main([
            "trace", "--format", "flame", "--out", str(out),
            "asr", "--seed", "3",
        ])
        assert rc == 0
        capsys.readouterr()
        # The asr command runs no engine pipeline, so the flame view
        # reports an empty trace — the export path still works.
        assert "flame" in out.read_text()

    def test_trace_requires_a_command(self, capsys):
        assert main(["trace"]) == 2
        assert "no command" in capsys.readouterr().err

    def test_trace_rejects_nested_trace(self, capsys):
        assert main(["trace", "trace", "asr"]) == 2
        assert "not supported" in capsys.readouterr().err

    def test_trace_rejects_inner_trace_flag(self, tmp_path, capsys):
        inner_out = str(tmp_path / "inner.json")
        rc = main(["trace", "tables", "--trace", inner_out])
        assert rc == 2
        assert "drop --trace" in capsys.readouterr().err

    def test_trace_flag_on_engine_command(self, tmp_path, capsys):
        out = tmp_path / "run.json"
        rc = main([
            "tables", "--agents", "6", "--days", "2", "--seed", "3",
            "--trace", str(out),
        ])
        assert rc == 0
        assert "trace:" in capsys.readouterr().out
        document = json.loads(out.read_text())
        assert document["traceEvents"]
