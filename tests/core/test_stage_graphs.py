"""Tests for the use cases rebuilt on the staged pipeline engine:
per-stage instrumentation, the parallel-determinism guarantee, and the
empty-bodied-email regression."""

import pytest

from repro.core.config import BIVoCConfig
from repro.core.pipeline import BIVoCSystem
from repro.core.usecases.churn import (
    link_evidence_text,
    run_churn_study,
)
from repro.synth.carrental import CarRentalConfig, generate_car_rental
from repro.synth.telecom import Message, TelecomConfig, generate_telecom


@pytest.fixture(scope="module")
def car_corpus():
    return generate_car_rental(
        CarRentalConfig(
            n_agents=10,
            n_days=3,
            calls_per_agent_per_day=4,
            n_customers=100,
            seed=11,
        )
    )


@pytest.fixture(scope="module")
def telecom_corpus():
    return generate_telecom(TelecomConfig(scale=0.03, n_customers=1500))


def _call_signature(analysis):
    """Comparable projection of a call-center analysis."""
    return [
        (
            call.call_id,
            call.customer_opening,
            call.agent_text,
            call.full_text,
            None
            if call.linked_record is None
            else call.linked_record.values.get("customer_ref"),
            call.detected_intent,
            call.value_selling,
            call.discount,
        )
        for call in analysis.calls
    ]


class TestCallCenterStageGraph:
    def test_stage_report_covers_fig3_flow(self, car_corpus):
        system = BIVoCSystem(
            BIVoCConfig(use_asr=False, link_mode="content")
        )
        analysis = system.process_call_center(car_corpus)
        report = analysis.stage_report
        assert [s.name for s in report.stages] == [
            "turn-split",
            "compose",
            "record-link",
            "annotate",
            "derive",
            "index",
        ]
        n = len(car_corpus.transcripts)
        assert report.total_in == n
        assert report.total_out == n
        for stats in report.stages:
            assert stats.docs_in == n
            assert stats.discarded == 0
            assert stats.wall_time >= 0.0

    def test_asr_graph_swaps_ingest_stage(self, car_corpus):
        system = BIVoCSystem(
            BIVoCConfig(use_asr=True, link_mode="metadata")
        )
        analysis = system.process_call_center(car_corpus)
        assert analysis.stage_report.stages[0].name == "transcribe"
        assert not analysis.stage_report.stages[0].parallel

    def test_parallel_identical_to_serial(self, car_corpus):
        serial = BIVoCSystem(
            BIVoCConfig(use_asr=False, link_mode="content")
        ).process_call_center(car_corpus)
        parallel = BIVoCSystem(
            BIVoCConfig(
                use_asr=False,
                link_mode="content",
                workers=4,
                batch_size=8,
            )
        ).process_call_center(car_corpus)
        # With >1 batch and pure stages, the executor actually engaged.
        assert any(
            s.parallel for s in parallel.stage_report.stages
        )
        assert _call_signature(serial) == _call_signature(parallel)
        assert serial.link_attempts == parallel.link_attempts
        assert serial.link_successes == parallel.link_successes
        assert len(serial.index) == len(parallel.index)

    def test_parallel_asr_identical_to_serial(self, car_corpus):
        """The impure transcribe stage must stay serial under workers,
        keeping the shared noise channel's draw order — and therefore
        the transcripts — bit-identical."""
        serial = BIVoCSystem(
            BIVoCConfig(use_asr=True, link_mode="content")
        ).process_call_center(car_corpus)
        parallel = BIVoCSystem(
            BIVoCConfig(
                use_asr=True,
                link_mode="content",
                workers=3,
                batch_size=8,
            )
        ).process_call_center(car_corpus)
        assert _call_signature(serial) == _call_signature(parallel)


class TestChurnStageGraph:
    def test_stage_report_matches_funnel(self, telecom_corpus):
        result = run_churn_study(telecom_corpus, channel="email")
        report = result.stage_report
        assert [s.name for s in report.stages] == [
            "clean",
            "entity-link",
            "label",
            "featurize",
        ]
        clean = report.stage("clean")
        assert clean.docs_in == result.total_messages
        assert clean.discarded == (
            result.cleaning_stats.total - result.cleaning_stats.kept
        )
        # Unlinked messages are kept, not discarded (paper reports the
        # unlinkable fraction): downstream stages see every survivor.
        assert report.stage("entity-link").discarded == 0
        assert report.total_out == clean.docs_out

    def test_parallel_identical_to_serial(self, telecom_corpus):
        serial = run_churn_study(telecom_corpus, channel="sms")
        parallel = run_churn_study(
            telecom_corpus, channel="sms", workers=4, batch_size=16
        )
        assert any(
            s.parallel for s in parallel.stage_report.stages
        )
        assert serial.detection_rate == parallel.detection_rate
        assert serial.unlinked_fraction == parallel.unlinked_fraction
        assert serial.flagged_customers == parallel.flagged_customers
        assert serial.test_churners == parallel.test_churners
        assert serial.train_messages == parallel.train_messages


class TestEmptyBodiedEmailRegression:
    """`_prepare_messages` used to crash with IndexError on
    ``raw_text.splitlines()[0]`` for an empty-bodied email."""

    def test_link_evidence_guards_empty_raw_text(self):
        assert link_evidence_text("email", "cleaned", "") == "cleaned"

    def test_link_evidence_keeps_header_line(self):
        evidence = link_evidence_text(
            "email", "body text", "From: jane doe\nbody text"
        )
        assert evidence == "body text From: jane doe"

    def test_non_email_channels_unchanged(self):
        assert link_evidence_text("sms", "short txt", "") == "short txt"

    def test_study_survives_empty_bodied_email(self, telecom_corpus):
        corpus = telecom_corpus
        hollow = Message(
            message_id=10_000_000,
            channel="email",
            month=0,
            raw_text="",
            clean_text="",
            sender_entity_id=None,
            from_churner=False,
        )
        corpus.emails.append(hollow)
        try:
            result = run_churn_study(corpus, channel="email")
        finally:
            corpus.emails.remove(hollow)
        assert result.total_messages >= 1
