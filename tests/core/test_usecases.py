"""Tests for the two use-case drivers (paper Sections V and VI)."""

import pytest

from repro.core.config import BIVoCConfig
from repro.core.usecases.agent_productivity import (
    run_insight_analysis,
    run_training_experiment,
)
from repro.core.usecases.churn import run_churn_study
from repro.synth.carrental import CarRentalConfig, generate_car_rental
from repro.synth.telecom import TelecomConfig, generate_telecom


@pytest.fixture(scope="module")
def car_corpus():
    return generate_car_rental(
        CarRentalConfig(
            n_agents=20,
            n_days=4,
            calls_per_agent_per_day=6,
            n_customers=250,
            seed=7,
        )
    )


@pytest.fixture(scope="module")
def study(car_corpus):
    return run_insight_analysis(
        car_corpus, BIVoCConfig(use_asr=False, link_mode="content")
    )


class TestInsightAnalysis:
    def test_table3_shape(self, study):
        shares = study.intent_shares()
        strong = shares["strong"]["reservation"]
        weak = shares["weak"]["reservation"]
        # Paper Table III: 63% vs 32%; generous bands for small corpora.
        assert strong == pytest.approx(0.63, abs=0.12)
        assert weak == pytest.approx(0.32, abs=0.12)
        assert strong > weak + 0.15

    def test_table4_shape(self, study):
        shares = study.utterance_shares()
        value_selling = shares["value_selling"]["True"]["reservation"]
        discount = shares["discount"]["True"]["reservation"]
        assert value_selling == pytest.approx(0.59, abs=0.12)
        assert discount == pytest.approx(0.72, abs=0.12)
        # Both utterances beat the base rate, as in the paper.  (The
        # discount > value-selling ordering is asserted at bench scale;
        # at this corpus size the two overlap within noise.)
        base = shares["value_selling"]["False"]["reservation"]
        assert value_selling > base
        assert discount > base

    def test_table2_planted_preferences_recovered(self, study):
        table = study.location_vehicle_table
        strongest = table.strongest(8, min_count=3)
        pairs = {(c.row_value, c.col_value) for c in strongest}
        # At least one planted heavy cell must surface.
        planted = {
            ("seattle", "suv"),
            ("new york", "luxury"),
            ("boston", "full-size"),
            ("los angeles", "convertible"),
            ("miami", "convertible"),
            ("denver", "suv"),
        }
        assert pairs & planted

    def test_drilldown_reaches_documents(self, study):
        table = study.location_vehicle_table
        strongest = table.strongest(1, min_count=3)[0]
        docs = table.documents(strongest.row_value, strongest.col_value)
        assert len(docs) == strongest.count


class TestTrainingExperiment:
    def test_improvement_and_marginal_significance(self):
        outcome, post_corpus = run_training_experiment(
            CarRentalConfig(
                n_agents=90,
                n_days=10,
                calls_per_agent_per_day=12,
                n_customers=1500,
                seed=23,
                build_transcripts=False,
            )
        )
        # Paper: +3% booking ratio.  Bands cover sampling noise.
        assert 0.005 < outcome.improvement < 0.07
        # Before training the groups were comparable.
        assert abs(outcome.pre_gap) < 0.04
        assert outcome.pre_ttest.p_value > 0.05
        # Group sizes per the paper: 20 trained vs 70 control.
        assert len(outcome.trained_ratios) == 20
        assert len(outcome.control_ratios) == 70
        assert not post_corpus.transcripts  # fast path skipped them

    def test_training_flags_only_in_post_period(self):
        outcome, post_corpus = run_training_experiment(
            CarRentalConfig(
                n_agents=10,
                n_days=2,
                calls_per_agent_per_day=4,
                n_customers=60,
                seed=3,
                build_transcripts=False,
            ),
            n_trained=3,
        )
        trained = [a for a in post_corpus.agents if a.trained]
        assert len(trained) == 3


class TestChurnStudy:
    @pytest.fixture(scope="class")
    def telecom_corpus(self):
        return generate_telecom(
            TelecomConfig(scale=0.03, n_customers=1500)
        )

    def test_email_study_reproduces_shape(self, telecom_corpus):
        result = run_churn_study(telecom_corpus, channel="email")
        # ~18% of emails unlinkable (paper VI).
        assert result.unlinked_fraction == pytest.approx(0.18, abs=0.07)
        # ~3% of linked training emails from churners.
        assert result.train_churner_fraction == pytest.approx(
            0.03, abs=0.025
        )
        # Detection in the paper's neighbourhood (53.6%); small-corpus
        # variance is large, so the band is wide.
        assert 0.2 <= result.detection_rate <= 0.9

    def test_sms_study_runs(self, telecom_corpus):
        result = run_churn_study(telecom_corpus, channel="sms")
        assert result.train_churner_fraction == pytest.approx(
            0.076, abs=0.04
        )
        assert result.detection_rate >= 0.0

    def test_both_channels_study(self, telecom_corpus):
        result = run_churn_study(telecom_corpus, channel="both")
        assert result.total_messages == len(telecom_corpus.emails) + len(
            telecom_corpus.sms
        )
        assert result.detection_rate > 0.2
        # Combined churner share sits between the two channel rates.
        assert 0.02 < result.train_churner_fraction < 0.12

    def test_unknown_channel_rejected(self, telecom_corpus):
        with pytest.raises(ValueError):
            run_churn_study(telecom_corpus, channel="fax")

    def test_insufficient_corpus_raises(self):
        # No churner emails at all -> training set has a single class.
        no_signal = generate_telecom(
            TelecomConfig(
                scale=0.001,
                n_customers=200,
                email_churner_fraction=1e-9,
            )
        )
        with pytest.raises(RuntimeError):
            run_churn_study(no_signal, channel="email")
