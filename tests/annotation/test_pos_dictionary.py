"""Tests for the PoS tagger and domain dictionary."""

import pytest

from repro.annotation.concepts import Concept
from repro.annotation.dictionary import DictionaryEntry, DomainDictionary
from repro.annotation.pos import (
    ADJ,
    DET,
    NEG,
    NOUN,
    NUMERIC,
    PosTagger,
    PREP,
    PRON,
    PROPN,
    PUNCT,
    VERB,
)


class TestPosTagger:
    @pytest.fixture(scope="class")
    def tagger(self):
        return PosTagger()

    def test_common_verbs(self, tagger):
        assert tagger.tag_token("book") == VERB
        assert tagger.tag_token("want") == VERB

    def test_suffix_verbs(self, tagger):
        assert tagger.tag_token("booking") == VERB
        assert tagger.tag_token("charged") == VERB

    def test_numbers(self, tagger):
        assert tagger.tag_token("42") == NUMERIC
        assert tagger.tag_token("forty") == NUMERIC

    def test_negation(self, tagger):
        assert tagger.tag_token("not") == NEG

    def test_closed_classes(self, tagger):
        assert tagger.tag_token("i") == PRON
        assert tagger.tag_token("the") == DET
        assert tagger.tag_token("for") == PREP

    def test_adjectives(self, tagger):
        assert tagger.tag_token("wonderful") == ADJ
        assert tagger.tag_token("rude") == ADJ

    def test_proper_nouns(self, tagger):
        assert tagger.tag_token("smith") == PROPN
        assert tagger.tag_token("seattle") == PROPN

    def test_noun_default(self, tagger):
        assert tagger.tag_token("car") == NOUN

    def test_punctuation(self, tagger):
        assert tagger.tag_token("!") == PUNCT

    def test_tag_sequence_aligned(self, tagger):
        tokens = ["i", "want", "a", "car"]
        assert len(tagger.tag(tokens)) == 4


class TestDomainDictionary:
    @pytest.fixture
    def dictionary(self):
        return DomainDictionary(
            [
                DictionaryEntry("child seat", "child seat",
                                "vehicle feature"),
                DictionaryEntry("ny", "new york", "place",
                                pos="proper noun"),
                DictionaryEntry("master card", "credit card",
                                "payment methods"),
                DictionaryEntry("seat", "seat", "part"),
            ]
        )

    def test_paper_examples(self, dictionary):
        concepts = dictionary.match(
            "i need a child seat and a master card refund in ny".split()
        )
        canonical = {(c.canonical, c.category) for c in concepts}
        assert ("child seat", "vehicle feature") in canonical
        assert ("credit card", "payment methods") in canonical
        assert ("new york", "place") in canonical

    def test_longest_match_wins(self, dictionary):
        concepts = dictionary.match("child seat please".split())
        assert [c.canonical for c in concepts] == ["child seat"]

    def test_single_word_entry_still_matches_alone(self, dictionary):
        concepts = dictionary.match("the seat is broken".split())
        assert [c.canonical for c in concepts] == ["seat"]

    def test_spans_recorded(self, dictionary):
        concepts = dictionary.match("a master card here".split())
        assert concepts[0].start == 1
        assert concepts[0].end == 3
        assert concepts[0].surface == "master card"

    def test_case_insensitive(self, dictionary):
        assert dictionary.match("MASTER CARD".split())

    def test_no_match(self, dictionary):
        assert dictionary.match("completely unrelated words".split()) == []

    def test_entries_for_category(self, dictionary):
        assert len(dictionary.entries_for_category("place")) == 1

    def test_add_with_components(self):
        dictionary = DomainDictionary()
        dictionary.add("suv", canonical="suv", category="vehicle type")
        assert len(dictionary) == 1

    def test_add_requires_complete_row(self):
        with pytest.raises(ValueError):
            DomainDictionary().add("surface only")

    def test_empty_surface_rejected(self):
        with pytest.raises(ValueError):
            DictionaryEntry("  ", "x", "y")


class TestConcept:
    def test_invalid_span_rejected(self):
        with pytest.raises(ValueError):
            Concept("x", "y", "x", start=3, end=3)
        with pytest.raises(ValueError):
            Concept("x", "y", "x", start=-1, end=2)
