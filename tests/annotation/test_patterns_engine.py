"""Tests for the pattern language and the assembled annotation engine."""

import pytest

from repro.annotation.domains import (
    COMMENDATION_CATEGORY,
    COMPLAINT_CATEGORY,
    DISCOUNT_CATEGORY,
    INTENT_CATEGORY,
    PLACE_CATEGORY,
    REQUEST_CATEGORY,
    STRONG_START,
    VALUE_SELLING_CATEGORY,
    VEHICLE_CATEGORY,
    WEAK_START,
    build_car_rental_engine,
    build_telecom_engine,
)
from repro.annotation.matcher import AnnotationEngine
from repro.annotation.patterns import parse_pattern


class TestPatternLanguage:
    def test_literal_sequence(self):
        pattern = parse_pattern("save money", "good rate", "value selling")
        concepts = pattern.match(
            ["you", "save", "money", "here"],
            ["PRON", "VERB", "NOUN", "ADV"],
            [set(), set(), set(), set()],
        )
        assert len(concepts) == 1
        assert concepts[0].surface == "save money"

    def test_pos_element(self):
        pattern = parse_pattern("please + VERB", "request", "request",
                                capture="VERB")
        concepts = pattern.match(
            ["please", "confirm", "now"],
            ["NOUN", "VERB", "ADV"],
            [set(), set(), set()],
        )
        assert concepts[0].canonical == "confirm"

    def test_numeric_element(self):
        pattern = parse_pattern(
            "just + NUMERIC + dollars", "good rate", "value selling"
        )
        concepts = pattern.match(
            ["just", "forty", "dollars"],
            ["ADV", "NUMERIC", "NOUN"],
            [set(), set(), set()],
        )
        assert concepts

    def test_wildcard(self):
        pattern = parse_pattern("was + * + rude", "rude", "question")
        concepts = pattern.match(
            ["was", "he", "rude"],
            ["VERB", "PRON", "ADJ"],
            [set(), set(), set()],
        )
        assert concepts

    def test_alternation(self):
        pattern = parse_pattern("want to make|book", "strong", "intent")
        hits = pattern.match(
            ["want", "to", "book"],
            ["VERB", "PREP", "VERB"],
            [set()] * 3,
        )
        assert hits

    def test_category_element(self):
        pattern = parse_pattern("<place> + NOUN", "place-noun", "assoc")
        concepts = pattern.match(
            ["boston", "office"],
            ["PROPN", "NOUN"],
            [{"place"}, set()],
        )
        assert concepts

    def test_multiple_occurrences(self):
        pattern = parse_pattern("good rate", "good rate", "value selling")
        concepts = pattern.match(
            ["good", "rate", "and", "good", "rate"],
            ["ADJ", "NOUN", "CONJ", "ADJ", "NOUN"],
            [set()] * 5,
        )
        assert len(concepts) == 2

    def test_capture_requires_pos_element(self):
        with pytest.raises(ValueError):
            parse_pattern("please now", "x", "y", capture="VERB")

    def test_empty_expression_rejected(self):
        with pytest.raises(ValueError):
            parse_pattern(" + ", "x", "y")


class TestCarRentalEngine:
    @pytest.fixture(scope="class")
    def engine(self):
        return build_car_rental_engine()

    def test_strong_start_detected(self, engine):
        doc = engine.annotate("i would like to make a booking")
        intents = {c.canonical for c in doc.concepts_in(INTENT_CATEGORY)}
        assert intents == {STRONG_START}

    def test_weak_start_detected(self, engine):
        doc = engine.annotate("can i know the rates for booking a car")
        intents = {c.canonical for c in doc.concepts_in(INTENT_CATEGORY)}
        assert WEAK_START in intents

    def test_discount_phrases(self, engine):
        for text in (
            "you qualify for our corporate program",
            "we have a motor club discount",
            "let me apply a promotional discount",
        ):
            assert engine.annotate(text).has_category(DISCOUNT_CATEGORY)

    def test_value_selling_rate(self, engine):
        doc = engine.annotate("that is a wonderful rate")
        assert doc.has_concept("mention of good rate",
                               VALUE_SELLING_CATEGORY)

    def test_value_selling_spoken_amount(self, engine):
        doc = engine.annotate("it is just forty two dollars")
        assert doc.has_category(VALUE_SELLING_CATEGORY)

    def test_vehicle_surface_mapping(self, engine):
        doc = engine.annotate("i want a seven seater")
        vehicles = [c.canonical for c in doc.concepts_in(VEHICLE_CATEGORY)]
        assert vehicles == ["suv"]

    def test_chevy_impala_is_full_size(self, engine):
        doc = engine.annotate("maybe a chevy impala")
        assert doc.has_concept("full-size", VEHICLE_CATEGORY)

    def test_place_variants_canonicalised(self, engine):
        doc = engine.annotate("pick up in ny tomorrow")
        places = [c.canonical for c in doc.concepts_in(PLACE_CATEGORY)]
        assert places == ["new york"]

    def test_request_pattern_from_paper(self, engine):
        doc = engine.annotate("please confirm the booking")
        requests = doc.concepts_in(REQUEST_CATEGORY)
        assert requests and requests[0].canonical == "confirm"

    def test_rude_negation_handling(self, engine):
        complaint = engine.annotate("the agent was rude to me")
        praise = engine.annotate("the agent was not rude at all")
        assert complaint.has_category(COMPLAINT_CATEGORY)
        assert praise.has_category(COMMENDATION_CATEGORY)

    def test_neutral_text_clean(self, engine):
        doc = engine.annotate("the weather is nice today")
        assert not doc.has_category(INTENT_CATEGORY)
        assert not doc.has_category(DISCOUNT_CATEGORY)


class TestTelecomEngine:
    @pytest.fixture(scope="class")
    def engine(self):
        return build_telecom_engine()

    def test_billing_driver(self, engine):
        doc = engine.annotate("i feel robbed when paying my bill")
        assert doc.has_category("billing_issue")

    def test_service_driver(self, engine):
        doc = engine.annotate("he was not able to access gprs")
        assert doc.has_category("service_issue")

    def test_competitor_driver(self, engine):
        doc = engine.annotate("your competitor has a cheaper plan")
        assert doc.has_category("competitor_tariff")

    def test_churn_intent(self, engine):
        doc = engine.annotate("please deactivate my number i am switching")
        assert doc.has_category("churn intent")

    def test_neutral_message(self, engine):
        doc = engine.annotate("please send me my balance")
        assert not doc.has_category("churn intent")


class TestAnnotationEngineMechanics:
    def test_annotate_many_with_ids(self):
        engine = AnnotationEngine()
        docs = engine.annotate_many(["a", "b"], ids=["x", "y"])
        assert [d.doc_id for d in docs] == ["x", "y"]

    def test_annotate_many_default_ids(self):
        engine = AnnotationEngine()
        docs = engine.annotate_many(["a", "b"])
        assert [d.doc_id for d in docs] == [0, 1]

    def test_metadata_attached(self):
        engine = AnnotationEngine()
        doc = engine.annotate("hello", metadata={"day": 3})
        assert doc.metadata["day"] == 3

    def test_concepts_sorted_by_span(self):
        engine = build_car_rental_engine()
        doc = engine.annotate(
            "pick up in boston a seven seater with corporate program"
        )
        starts = [c.start for c in doc.concepts]
        assert starts == sorted(starts)
