"""Tests for term-list building and LM domain-weight selection."""

import pytest

from repro.annotation.dictionary import DictionaryEntry, DomainDictionary
from repro.annotation.termlist import (
    TermEntry,
    frequency_term_list,
    uncovered_terms,
)
from repro.asr.lm import NGramLM, choose_domain_weight


CORPUS = [
    "i want to book a car in boston",
    "the corporate program discount applies",
    "corporate program members save money",
    "book a car with the corporate program",
]


class TestFrequencyTermList:
    def test_sorted_by_count(self):
        entries = frequency_term_list(CORPUS, min_count=1)
        counts = [entry.count for entry in entries]
        assert counts == sorted(counts, reverse=True)

    def test_stopwords_removed(self):
        entries = frequency_term_list(CORPUS, min_count=1)
        terms = {entry.term for entry in entries}
        assert "the" not in terms
        assert "i" not in terms

    def test_bigrams_surface(self):
        entries = frequency_term_list(CORPUS, min_count=2)
        terms = {entry.term for entry in entries}
        assert "corporate program" in terms

    def test_bigrams_optional(self):
        entries = frequency_term_list(
            CORPUS, min_count=1, include_bigrams=False
        )
        assert all(" " not in entry.term for entry in entries)

    def test_min_count_filters(self):
        entries = frequency_term_list(CORPUS, min_count=3)
        assert all(entry.count >= 3 for entry in entries)

    def test_coverage_monotone_to_one(self):
        entries = frequency_term_list(CORPUS, min_count=1)
        coverages = [entry.coverage for entry in entries]
        assert coverages == sorted(coverages)
        assert coverages[-1] == pytest.approx(1.0)

    def test_limit(self):
        entries = frequency_term_list(CORPUS, min_count=1, limit=3)
        assert len(entries) == 3

    def test_numbers_dropped(self):
        entries = frequency_term_list(
            ["pay 500 now", "pay 500 later"], min_count=1
        )
        assert all("500" not in entry.term for entry in entries)

    def test_empty_corpus(self):
        assert frequency_term_list([], min_count=1) == []


class TestUncoveredTerms:
    def test_known_surfaces_excluded(self):
        entries = [
            TermEntry("corporate program", 3, 0.5),
            TermEntry("boston", 2, 0.8),
            TermEntry("novelty", 1, 1.0),
        ]
        dictionary = DomainDictionary(
            [
                DictionaryEntry("corporate program", "discount",
                                "discount"),
                DictionaryEntry("boston", "boston", "place"),
            ]
        )
        remaining = uncovered_terms(entries, dictionary)
        assert [item.term for item in remaining] == ["novelty"]

    def test_component_words_of_surfaces_excluded(self):
        entries = [TermEntry("corporate", 3, 1.0)]
        dictionary = DomainDictionary(
            [DictionaryEntry("corporate program", "discount", "discount")]
        )
        assert uncovered_terms(entries, dictionary) == []


class TestChooseDomainWeight:
    def test_domain_heldout_prefers_high_weight(self):
        general = NGramLM().fit(
            [s.split() for s in (
                "the weather is nice today",
                "children played in the park",
            )]
        )
        domain = NGramLM().fit(
            [s.split() for s in (
                "i want to book a car",
                "the rate for a car is forty dollars",
            )]
        )
        heldout = ["i want to book a car today"]
        weight, avg = choose_domain_weight(general, domain, heldout)
        assert weight >= 0.7
        assert avg < 0.0  # a log-likelihood

    def test_general_heldout_prefers_low_weight(self):
        general = NGramLM().fit(
            [s.split() for s in (
                "the weather is nice today",
                "children played in the park all day",
            )]
        )
        domain = NGramLM().fit([["book", "a", "car"]])
        heldout = ["the weather is nice in the park"]
        weight, _ = choose_domain_weight(
            general, domain, heldout, candidates=(0.2, 0.5, 0.8)
        )
        assert weight == pytest.approx(0.2)

    def test_empty_heldout_rejected(self):
        lm = NGramLM().fit([["a"]])
        with pytest.raises(ValueError):
            choose_domain_weight(lm, lm, [])
