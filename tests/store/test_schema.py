"""Tests for schemas and attributes."""

import pytest

from repro.store.schema import Attribute, AttributeType, Schema


class TestAttribute:
    def test_defaults(self):
        attr = Attribute("name")
        assert attr.type is AttributeType.STRING
        assert not attr.indexed

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Attribute("")

    def test_frozen(self):
        attr = Attribute("x")
        with pytest.raises(AttributeError):
            attr.name = "y"


class TestSchema:
    def make(self):
        return Schema.build(
            ("customer_name", AttributeType.NAME, True),
            ("phone", AttributeType.PHONE, True),
            ("age", AttributeType.NUMBER),
        )

    def test_build_and_lookup(self):
        schema = self.make()
        assert schema["customer_name"].type is AttributeType.NAME
        assert "phone" in schema
        assert "missing" not in schema

    def test_names_ordered(self):
        assert self.make().names == ["customer_name", "phone", "age"]

    def test_len_and_iter(self):
        schema = self.make()
        assert len(schema) == 3
        assert [a.name for a in schema] == schema.names

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Schema.build(("a", AttributeType.STRING), ("a", AttributeType.NAME))

    def test_missing_lookup_raises_keyerror(self):
        with pytest.raises(KeyError):
            self.make()["nope"]

    def test_attributes_of_type(self):
        schema = self.make()
        assert [a.name for a in schema.attributes_of_type(AttributeType.PHONE)] == [
            "phone"
        ]

    def test_indexed_attributes(self):
        schema = self.make()
        assert [a.name for a in schema.indexed_attributes()] == [
            "customer_name",
            "phone",
        ]

    def test_build_accepts_attribute_instances(self):
        schema = Schema.build(Attribute("x", AttributeType.DATE))
        assert schema["x"].type is AttributeType.DATE
