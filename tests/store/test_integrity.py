"""Payload integrity: checksum stamping, verification, torn bytes."""

import json

import pytest

from repro.store.integrity import (
    CHECKSUM_KEY,
    IntegrityError,
    checksum_payload,
    decode_stamped,
    encode_stamped,
    stamp_checksum,
    verify_checksum,
)

PAYLOAD = {"offset": 12, "nested": {"a": [1, 2, 3]}, "version": 3}


class TestChecksum:
    def test_key_order_insensitive(self):
        reordered = dict(reversed(list(PAYLOAD.items())))
        assert checksum_payload(PAYLOAD) == checksum_payload(reordered)

    def test_value_sensitive(self):
        changed = dict(PAYLOAD, offset=13)
        assert checksum_payload(PAYLOAD) != checksum_payload(changed)

    def test_stamping_is_idempotent(self):
        stamped = stamp_checksum(PAYLOAD)
        assert stamp_checksum(stamped)[CHECKSUM_KEY] == (
            stamped[CHECKSUM_KEY]
        )

    def test_verify_strips_the_stamp(self):
        assert verify_checksum(stamp_checksum(PAYLOAD)) == PAYLOAD

    def test_unstamped_payload_passes(self):
        # Pre-checksum format versions must stay loadable.
        assert verify_checksum(dict(PAYLOAD)) == PAYLOAD

    def test_mismatch_raises(self):
        stamped = stamp_checksum(PAYLOAD)
        stamped["offset"] = 99
        with pytest.raises(IntegrityError, match="checksum"):
            verify_checksum(stamped, source="unit payload")


class TestEncodedRoundTrip:
    def test_round_trip(self):
        assert decode_stamped(encode_stamped(PAYLOAD)) == PAYLOAD

    def test_any_single_bit_flip_detected(self):
        data = bytearray(encode_stamped(PAYLOAD))
        for position in range(0, len(data), 7):
            torn = bytes(
                data[:position]
            ) + bytes([data[position] ^ 0xFF]) + bytes(data[position + 1:])
            with pytest.raises(IntegrityError):
                decode_stamped(torn)

    def test_truncated_bytes_are_integrity_errors(self):
        data = encode_stamped(PAYLOAD)
        with pytest.raises(IntegrityError, match="torn or corrupted"):
            decode_stamped(data[: len(data) // 2])

    def test_non_object_json_rejected(self):
        with pytest.raises(IntegrityError, match="not an"):
            decode_stamped(json.dumps([1, 2]).encode("utf-8"))
