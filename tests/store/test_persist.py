"""Tests for JSON persistence of the structured store."""

import json

import pytest

from repro.store.database import Database
from repro.store.persist import (
    database_from_dict,
    database_to_dict,
    load_database,
    save_database,
)
from repro.store.schema import AttributeType, Schema


@pytest.fixture
def db():
    database = Database("wh")
    customers = database.create_table(
        "customers",
        Schema.build(
            ("name", AttributeType.NAME, True),
            ("phone", AttributeType.PHONE, True),
            ("age", AttributeType.NUMBER),
        ),
    )
    customers.insert_many(
        [
            {"name": "john smith", "phone": "5558675309", "age": 34},
            {"name": "mary walker", "phone": "4441239999"},
        ]
    )
    database.build_indexes()
    return database


class TestRoundTrip:
    def test_dict_round_trip(self, db):
        restored = database_from_dict(database_to_dict(db))
        assert restored.table_names == db.table_names
        original = db.table("customers")
        copy = restored.table("customers")
        assert len(copy) == len(original)
        for entity in original:
            assert copy.get(entity.entity_id).values == entity.values

    def test_schema_preserved(self, db):
        restored = database_from_dict(database_to_dict(db))
        schema = restored.table("customers").schema
        assert schema["name"].type is AttributeType.NAME
        assert schema["name"].indexed
        assert not schema["age"].indexed

    def test_indexes_rebuilt(self, db):
        restored = database_from_dict(database_to_dict(db))
        found = restored.candidates("customers", "name", "jon smith")
        assert any(e["name"] == "john smith" for e in found)

    def test_indexes_optional(self, db):
        restored = database_from_dict(
            database_to_dict(db), build_indexes=False
        )
        assert not restored.has_index("customers", "name")

    def test_file_round_trip(self, db, tmp_path):
        path = tmp_path / "wh.json"
        save_database(db, path)
        restored = load_database(path)
        assert len(restored.table("customers")) == 2

    def test_json_serialisable(self, db):
        json.dumps(database_to_dict(db))  # must not raise

    def test_none_values_preserved(self, db):
        restored = database_from_dict(database_to_dict(db))
        assert restored.table("customers").get(1)["age"] is None

    def test_non_contiguous_ids_rejected(self, db):
        payload = database_to_dict(db)
        payload["tables"]["customers"]["rows"][0]["entity_id"] = 7
        with pytest.raises(ValueError):
            database_from_dict(payload)


class TestEntityIdDiagnostics:
    """Gap/duplicate errors must name the table and the offending id."""

    def test_gap_error_names_table_and_missing_id(self, db):
        payload = database_to_dict(db)
        payload["tables"]["customers"]["rows"][1]["entity_id"] = 5
        with pytest.raises(ValueError) as excinfo:
            database_from_dict(payload)
        message = str(excinfo.value)
        assert "'customers'" in message
        assert "missing entity id 1" in message
        assert "next stored id is 5" in message

    def test_duplicate_id_error_names_table_and_id(self, db):
        payload = database_to_dict(db)
        payload["tables"]["customers"]["rows"][1]["entity_id"] = 0
        with pytest.raises(
            ValueError, match=r"'customers' has duplicate entity id 0"
        ):
            database_from_dict(payload)

    def test_first_id_must_be_zero(self, db):
        payload = database_to_dict(db)
        for offset, row in enumerate(
            payload["tables"]["customers"]["rows"]
        ):
            row["entity_id"] = offset + 3
        with pytest.raises(ValueError, match="missing entity id 0"):
            database_from_dict(payload)
