"""Tests for the database container and query layer."""

import pytest

from repro.store.database import Database
from repro.store.query import Query, count_by, ratio_by
from repro.store.schema import AttributeType, Schema


@pytest.fixture
def db():
    database = Database()
    database.create_table(
        "customers",
        Schema.build(
            ("name", AttributeType.NAME, True),
            ("phone", AttributeType.PHONE, True),
            ("segment", AttributeType.CATEGORY),
        ),
    )
    customers = database.table("customers")
    customers.insert_many(
        [
            {"name": "John Smith", "phone": "5558675309", "segment": "gold"},
            {"name": "Mary Walker", "phone": "4441239999", "segment": "new"},
            {"name": "Jon Smythe", "phone": "5550000000", "segment": "gold"},
        ]
    )
    database.build_indexes()
    return database


class TestDatabase:
    def test_duplicate_table_rejected(self, db):
        with pytest.raises(ValueError):
            db.create_table("customers", Schema.build(("a", AttributeType.ID)))

    def test_unknown_table(self, db):
        with pytest.raises(KeyError):
            db.table("missing")

    def test_table_names(self, db):
        assert db.table_names == ["customers"]

    def test_candidates_fuzzy_name(self, db):
        found = db.candidates("customers", "name", "Jon Smith")
        names = [entity["name"] for entity in found]
        assert "John Smith" in names

    def test_candidates_partial_phone(self, db):
        found = db.candidates("customers", "phone", "8675309")
        assert found[0]["name"] == "John Smith"

    def test_unindexed_attribute_raises(self, db):
        with pytest.raises(KeyError):
            db.index_for("customers", "segment")

    def test_has_index(self, db):
        assert db.has_index("customers", "name")
        assert not db.has_index("customers", "segment")

    def test_rebuild_after_insert(self, db):
        db.table("customers").insert(
            {"name": "Zoe Quartz", "phone": "1112223333"}
        )
        db.build_indexes()
        found = db.candidates("customers", "name", "Zoe Quartz")
        assert any(e["name"] == "Zoe Quartz" for e in found)

    def test_schema_tuple_shorthand(self):
        database = Database()
        table = database.create_table(
            "t", [("a", AttributeType.STRING), ("b", AttributeType.NUMBER)]
        )
        assert table.schema.names == ["a", "b"]


class TestQuery:
    def test_where_chain(self, db):
        table = db.table("customers")
        gold = Query(table).where_equals("segment", "gold")
        assert gold.count() == 2
        gold_smiths = gold.where(lambda e: "Smith" in e["name"])
        assert gold_smiths.count() == 1

    def test_queries_are_immutable(self, db):
        base = Query(db.table("customers"))
        filtered = base.where_equals("segment", "gold")
        assert base.count() == 3
        assert filtered.count() == 2

    def test_values(self, db):
        names = Query(db.table("customers")).values("name")
        assert len(names) == 3

    def test_group_by(self, db):
        groups = Query(db.table("customers")).group_by("segment")
        assert {k: len(v) for k, v in groups.items()} == {"gold": 2, "new": 1}


class TestAggregations:
    def test_count_by(self, db):
        counts = count_by(db.table("customers"), "segment")
        assert counts["gold"] == 2

    def test_ratio_by_simple(self, db):
        ratio = ratio_by(db.table("customers"), "segment", "gold")
        assert ratio == pytest.approx(2 / 3)

    def test_ratio_by_restricted_denominator(self, db):
        table = db.table("customers")
        ratio = ratio_by(table, "segment", "gold", failure_value="platinum")
        assert ratio == 1.0  # no platinum rows: denominator is gold only

    def test_ratio_by_empty(self):
        assert ratio_by([], "x", "y") == 0.0
