"""Tests for tables and entities."""

import pytest

from repro.store.schema import AttributeType, Schema
from repro.store.table import Entity, Table


@pytest.fixture
def customers():
    schema = Schema.build(
        ("name", AttributeType.NAME, True),
        ("city", AttributeType.PLACE),
        ("age", AttributeType.NUMBER),
    )
    table = Table("customers", schema)
    table.insert_many(
        [
            {"name": "John Smith", "city": "New York", "age": 34},
            {"name": "Mary Walker", "city": "Boston"},
            {"name": "Raj Patel", "city": "Seattle", "age": 41},
        ]
    )
    return table


class TestTable:
    def test_insert_assigns_sequential_ids(self, customers):
        assert [e.entity_id for e in customers] == [0, 1, 2]

    def test_unknown_attribute_rejected(self, customers):
        with pytest.raises(KeyError):
            customers.insert({"name": "X", "salary": 10})

    def test_missing_attributes_become_none(self, customers):
        assert customers.get(1).values["age"] is None

    def test_get_unknown_id(self, customers):
        with pytest.raises(KeyError):
            customers.get(99)

    def test_len_and_contains(self, customers):
        assert len(customers) == 3
        assert 0 in customers
        assert 99 not in customers

    def test_scan_with_predicate(self, customers):
        old = list(customers.scan(lambda e: (e.get("age") or 0) > 35))
        assert [e["name"] for e in old] == ["Raj Patel"]

    def test_column_skips_none(self, customers):
        assert customers.column("age") == [34, 41]

    def test_column_unknown_attribute(self, customers):
        with pytest.raises(KeyError):
            customers.column("salary")

    def test_schema_type_check(self):
        with pytest.raises(TypeError):
            Table("t", schema="not-a-schema")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Table("", Schema.build(("a", AttributeType.STRING)))


class TestEntity:
    def test_equality_by_table_and_id(self):
        a = Entity(1, "customers", {"x": 1})
        b = Entity(1, "customers", {"x": 2})
        c = Entity(1, "transactions", {"x": 1})
        assert a == b
        assert a != c

    def test_hashable(self):
        assert len({Entity(1, "t", {}), Entity(1, "t", {})}) == 1

    def test_get_with_default(self):
        entity = Entity(0, "t", {"a": None, "b": 2})
        assert entity.get("a", "fallback") == "fallback"
        assert entity.get("b") == 2
        assert entity.get("missing", 7) == 7

    def test_getitem_and_contains(self):
        entity = Entity(0, "t", {"a": 1})
        assert entity["a"] == 1
        assert "a" in entity
        assert "z" not in entity
