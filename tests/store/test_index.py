"""Tests for exact and fuzzy indexes."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.store.index import (
    CompositeIndex,
    DigitsIndex,
    HashIndex,
    QGramIndex,
    SoundexIndex,
    TokenIndex,
    build_index_for_attribute,
)
from repro.store.schema import AttributeType


class TestHashIndex:
    def test_exact_lookup(self):
        index = HashIndex()
        index.add(1, "Reserved")
        index.add(2, "Unbooked")
        assert index.candidates("reserved") == [1]

    def test_multiple_matches(self):
        index = HashIndex()
        index.add(1, "suv")
        index.add(2, "SUV")
        assert set(index.candidates("suv")) == {1, 2}

    def test_no_match(self):
        assert HashIndex().candidates("anything") == []

    def test_len(self):
        index = HashIndex()
        index.add(1, "a")
        index.add(2, "a")
        assert len(index) == 2


class TestTokenIndex:
    def test_shared_tokens_ranked_first(self):
        index = TokenIndex()
        index.add(1, "full size sedan")
        index.add(2, "full size suv")
        index.add(3, "compact hatchback")
        ranked = index.candidates("full size suv")
        assert ranked[0] == 2
        assert 3 not in ranked

    def test_case_insensitive(self):
        index = TokenIndex()
        index.add(1, "New York")
        assert index.candidates("new york") == [1]


class TestQGramIndex:
    def test_typo_tolerance(self):
        index = QGramIndex(q=2)
        index.add(1, "smith")
        index.add(2, "walker")
        assert index.candidates("smyth")[0] == 1

    def test_limit_respected(self):
        index = QGramIndex(q=2)
        for i in range(100):
            index.add(i, "smith")
        assert len(index.candidates("smith", limit=10)) == 10

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            QGramIndex(q=0)

    @given(st.text(alphabet="abcdef", min_size=2, max_size=8))
    def test_exact_value_always_candidate(self, value):
        index = QGramIndex(q=2)
        index.add(7, value)
        assert 7 in index.candidates(value)


class TestSoundexIndex:
    def test_phonetic_match(self):
        index = SoundexIndex()
        index.add(1, "John Smith")
        index.add(2, "Mary Walker")
        # ASR-style corruption: similar-sounding surname.
        assert 1 in index.candidates("Jon Smyth")
        assert 2 not in index.candidates("Jon Smyth")


class TestDigitsIndex:
    def test_partial_phone_number(self):
        index = DigitsIndex(q=3)
        index.add(1, "555-867-5309")
        index.add(2, "444-123-9999")
        # Only 7 of 10 digits survived recognition.
        assert index.candidates("8675309")[0] == 1

    def test_formatting_ignored(self):
        index = DigitsIndex(q=3)
        index.add(1, "(555) 867 5309")
        assert index.candidates("5558675309")[0] == 1


class TestCompositeIndex:
    def test_merges_both_views(self):
        composite = CompositeIndex([QGramIndex(q=2), SoundexIndex()])
        composite.add(1, "catherine")
        composite.add(2, "katharine")  # phonetic twin, spelling differs
        ranked = composite.candidates("katherine")
        assert set(ranked) >= {1, 2}

    def test_requires_subindexes(self):
        with pytest.raises(ValueError):
            CompositeIndex([])


class TestBuildIndexForAttribute:
    def test_name_gets_composite(self):
        assert isinstance(
            build_index_for_attribute(AttributeType.NAME), CompositeIndex
        )

    def test_phone_gets_digits(self):
        assert isinstance(
            build_index_for_attribute(AttributeType.PHONE), DigitsIndex
        )

    def test_category_gets_hash(self):
        assert isinstance(
            build_index_for_attribute(AttributeType.CATEGORY), HashIndex
        )

    def test_string_gets_token(self):
        assert isinstance(
            build_index_for_attribute(AttributeType.STRING), TokenIndex
        )

    def test_place_gets_qgram(self):
        assert isinstance(
            build_index_for_attribute(AttributeType.PLACE), QGramIndex
        )
