"""Exporters: Chrome trace dict, JSONL, text flame summary."""

import json

import pytest

from repro.obs import (
    Tracer,
    chrome_trace_dict,
    render_flame_text,
    write_chrome_trace,
    write_spans_jsonl,
)


class FakeClock:
    """Deterministic clock: each reading advances by one tick."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        self.now += 1.0
        return self.now


def _sample_tracer():
    """A small two-level trace driven by the fake clock."""
    tracer = Tracer(clock=FakeClock())
    with tracer.span("run", category="engine", tags={"docs": 3}):
        with tracer.span("stage:a", category="engine"):
            pass
        with tracer.span("stage:b"):
            pass
    return tracer


class TestChromeTrace:
    def test_events_are_complete_and_rebased(self):
        document = chrome_trace_dict(_sample_tracer().finished())
        events = document["traceEvents"]
        assert document["displayTimeUnit"] == "ms"
        assert [e["name"] for e in events] == ["run", "stage:a", "stage:b"]
        assert all(e["ph"] == "X" for e in events)
        assert all(e["pid"] == 1 for e in events)
        # Rebased: the earliest span starts at ts 0; one tick = 1s = 1e6us.
        run, stage_a, stage_b = events
        assert run["ts"] == pytest.approx(0.0)
        assert stage_a["ts"] == pytest.approx(1e6)
        assert stage_a["dur"] == pytest.approx(1e6)
        assert stage_b["ts"] == pytest.approx(3e6)
        assert run["dur"] == pytest.approx(5e6)

    def test_args_carry_span_tree_and_tags(self):
        events = chrome_trace_dict(
            _sample_tracer().finished()
        )["traceEvents"]
        run, stage_a, _ = events
        assert run["args"]["docs"] == 3
        assert run["args"]["span_id"] == 0
        assert "parent_id" not in run["args"]
        assert stage_a["args"]["parent_id"] == 0
        # An empty category falls back to the generic "span".
        assert stage_a["cat"] == "engine"
        assert events[2]["cat"] == "span"

    def test_non_finite_tags_are_stringified(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("s", tags={"change": float("inf"),
                                    "ok": 1.5}):
            pass
        document = chrome_trace_dict(tracer.finished())
        args = document["traceEvents"][0]["args"]
        assert args["change"] == "inf"
        assert args["ok"] == pytest.approx(1.5)
        # Strict JSON round-trips (no NaN/Infinity literals needed).
        json.loads(json.dumps(document, allow_nan=False))

    def test_write_chrome_trace_file_parses(self, tmp_path):
        path = tmp_path / "trace.json"
        assert write_chrome_trace(
            _sample_tracer().finished(), path
        ) == path
        document = json.loads(path.read_text())
        assert len(document["traceEvents"]) == 3

    def test_empty_trace(self):
        assert chrome_trace_dict([]) == {
            "traceEvents": [], "displayTimeUnit": "ms",
        }


class TestJsonl:
    def test_one_record_per_span(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        write_spans_jsonl(_sample_tracer().finished(), path)
        records = [
            json.loads(line)
            for line in path.read_text().splitlines()
        ]
        # JSONL is in completion order; children close first.
        assert [r["name"] for r in records] == [
            "stage:a", "stage:b", "run",
        ]
        assert records[2]["tags"] == {"docs": 3}
        assert records[0]["parent"] == records[2]["id"]


class TestFlame:
    def test_deterministic_and_aggregated(self):
        spans = _sample_tracer().finished()
        text = render_flame_text(spans)
        assert text == render_flame_text(spans)
        assert "run" in text
        assert "stage:a" in text
        assert "x1" in text
        assert "1 root span(s), 3 spans" in text

    def test_same_name_spans_fold_into_one_line(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("run"):
            for _ in range(3):
                with tracer.span("batch"):
                    pass
        text = render_flame_text(tracer.finished())
        assert "x3" in text

    def test_min_share_folds_small_children(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("run"):
            with tracer.span("tiny"):
                pass
            clock.now += 10_000.0  # dwarf the tiny child
        text = render_flame_text(tracer.finished(), min_share=0.5)
        assert "tiny" not in text
        assert "hidden" in text

    def test_empty_trace_message(self):
        assert render_flame_text([]) == "flame: no spans recorded"
