"""Tracer/Span: nesting, fake clocks, threads, the null tracer."""

import threading

import pytest

from repro.obs import NULL_TRACER, NullTracer, Tracer


class FakeClock:
    """Deterministic clock: each reading advances by one tick."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        self.now += 1.0
        return self.now


def _by_name(tracer, name):
    """The single finished span called ``name``."""
    matches = [s for s in tracer.finished() if s.name == name]
    assert len(matches) == 1
    return matches[0]


class TestNesting:
    def test_child_links_to_enclosing_span(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id

    def test_siblings_share_a_parent(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("root") as root:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == root.span_id
        assert b.parent_id == root.span_id
        assert a.span_id != b.span_id

    def test_explicit_parent_overrides_stack(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("stage") as stage:
            with tracer.span("other"):
                with tracer.span("batch", parent=stage) as batch:
                    pass
        assert batch.parent_id == stage.span_id

    def test_finished_in_close_order(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [s.name for s in tracer.finished()] == ["outer", "inner"][::-1]


class TestClockAndTags:
    def test_fake_clock_gives_exact_durations(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer"):  # start=1
            with tracer.span("inner"):  # start=2, end=3
                pass
        # outer: start 1, end 4
        inner = _by_name(tracer, "inner")
        outer = _by_name(tracer, "outer")
        assert inner.duration == pytest.approx(1.0)
        assert outer.duration == pytest.approx(3.0)
        assert outer.start < inner.start < inner.end < outer.end

    def test_seed_tags_are_copied_and_tag_chains(self):
        tracer = Tracer(clock=FakeClock())
        seed = {"docs": 5}
        with tracer.span("s", tags=seed) as span:
            assert span.tag("more", 1) is span
        seed["docs"] = 99  # caller mutation must not leak in
        finished = _by_name(tracer, "s")
        assert finished.tags == {"docs": 5, "more": 1}

    def test_error_tag_on_exception_which_propagates(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(KeyError):
            with tracer.span("boom"):
                raise KeyError("x")
        span = _by_name(tracer, "boom")
        assert span.tags["error"] == "KeyError"
        assert span.end is not None

    def test_open_span_has_zero_duration(self):
        tracer = Tracer(clock=FakeClock())
        context = tracer.span("open")
        span = context.__enter__()
        assert span.duration == pytest.approx(0.0)
        context.__exit__(None, None, None)

    def test_to_json_dict_shape(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("s", category="test", tags={"k": 1}):
            pass
        record = _by_name(tracer, "s").to_json_dict()
        assert sorted(record) == [
            "cat", "dur", "id", "name", "parent", "start", "tags",
            "thread",
        ]
        assert record["name"] == "s"
        assert record["cat"] == "test"
        assert record["tags"] == {"k": 1}


class TestThreads:
    def test_worker_thread_spans_get_dense_thread_numbers(self):
        tracer = Tracer(clock=FakeClock())

        def work(stage):
            with tracer.span("batch", parent=stage):
                pass

        with tracer.span("stage") as stage:
            worker = threading.Thread(target=work, args=(stage,))
            worker.start()
            worker.join()
        batch = _by_name(tracer, "batch")
        assert _by_name(tracer, "stage").thread == 0
        assert batch.thread == 1
        assert batch.parent_id == stage.span_id

    def test_worker_without_parent_is_a_root(self):
        tracer = Tracer(clock=FakeClock())

        def work():
            with tracer.span("orphan"):
                pass

        with tracer.span("stage"):
            worker = threading.Thread(target=work)
            worker.start()
            worker.join()
        assert _by_name(tracer, "orphan").parent_id is None


class TestHousekeeping:
    def test_len_and_clear(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert len(tracer) == 2
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.finished() == []

    def test_span_ids_are_dense_in_open_order(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("a") as a:
            with tracer.span("b") as b:
                pass
        with tracer.span("c") as c:
            pass
        assert [a.span_id, b.span_id, c.span_id] == [0, 1, 2]


class TestNullTracer:
    def test_span_is_a_usable_noop(self):
        with NULL_TRACER.span("x", category="y", tags={"a": 1}) as span:
            assert span.tag("k", "v") is span
        assert NULL_TRACER.finished() == []
        assert len(NULL_TRACER) == 0

    def test_never_suppresses_exceptions(self):
        with pytest.raises(ValueError):
            with NullTracer().span("x"):
                raise ValueError("boom")

    def test_clear_is_a_noop(self):
        NullTracer().clear()
