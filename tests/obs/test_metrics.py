"""Counter/Gauge/Histogram semantics and the registry contract."""

import pytest

from repro.obs import (
    NULL_METRICS,
    TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
)


class TestCounter:
    def test_monotonic_increments(self):
        counter = Counter("c")
        assert counter.inc() is counter
        counter.inc(4)
        counter.inc(0)
        assert counter.snapshot_value() == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            Counter("c").inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        gauge = Gauge("g")
        assert gauge.snapshot_value() is None
        assert gauge.set(3) is gauge
        gauge.set(7)
        assert gauge.snapshot_value() == 7


class TestHistogram:
    def test_observations_land_in_fixed_buckets(self):
        histogram = Histogram("h", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 1.0, 5.0, 10.0, 50.0, 1000.0):
            assert histogram.observe(value) is histogram
        snapshot = histogram.snapshot_value()
        # bound 1.0 gets 0.5 and 1.0; 10.0 gets 5.0 and 10.0;
        # 100.0 gets 50.0; overflow gets 1000.0.
        assert snapshot["counts"] == [2, 2, 1, 1]
        assert snapshot["buckets"] == [1.0, 10.0, 100.0]
        assert snapshot["count"] == 6
        assert snapshot["sum"] == pytest.approx(1066.5)

    def test_default_time_buckets(self):
        histogram = Histogram("h")
        assert histogram.buckets == TIME_BUCKETS
        assert len(histogram.counts) == len(TIME_BUCKETS) + 1

    def test_bounds_must_be_strictly_increasing(self):
        with pytest.raises(ValueError, match="strictly"):
            Histogram("h", buckets=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError, match="at least one"):
            Histogram("h", buckets=())


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")
        assert len(registry) == 3

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="counter"):
            registry.gauge("x")
        with pytest.raises(ValueError, match="counter"):
            registry.histogram("x")

    def test_histogram_bucket_conflict_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        registry.histogram("h", buckets=(1.0, 2.0))  # same bounds: fine
        with pytest.raises(ValueError, match="bounds"):
            registry.histogram("h", buckets=(1.0, 3.0))

    def test_snapshot_shape_sorted_with_empty_sections_omitted(self):
        registry = MetricsRegistry()
        assert registry.snapshot() == {}
        registry.counter("z").inc(2)
        registry.counter("a").inc()
        registry.gauge("g").set(5)
        snapshot = registry.snapshot()
        assert sorted(snapshot) == ["counters", "gauges"]
        assert list(snapshot["counters"]) == ["a", "z"]
        assert snapshot["counters"]["z"] == 2
        assert snapshot["gauges"]["g"] == 5

    def test_histogram_section(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot["histograms"]["h"]["counts"] == [1, 0]


class TestNullMetrics:
    def test_instruments_are_shared_noops(self):
        null = NullMetrics()
        instrument = null.counter("a")
        assert instrument.inc(5) is instrument
        assert instrument.set(3) is instrument
        assert instrument.observe(0.1) is instrument
        assert null.gauge("b") is instrument
        assert null.histogram("c") is instrument

    def test_snapshot_empty_and_len_zero(self):
        assert NULL_METRICS.snapshot() == {}
        assert len(NULL_METRICS) == 0
