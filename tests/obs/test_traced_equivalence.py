"""Observability is write-only: traced runs == untraced runs.

The acceptance bar for the obs layer — activating a tracer and a
metrics registry around the engine, the stream consumer or the linking
hot paths must not change a single output bit.  Also pins the span
hierarchy (pipeline:run -> stage -> batch, stream:batch above them)
and the zero-row funnel guarantee for fully-discarded / fully-skipped
micro-batches.
"""

import random

import pytest

from repro.engine import Document, FunctionStage, MapStage, PipelineRunner
from repro.linking.fagin import fagin_merge
from repro.mining.stage import ConceptIndexStage
from repro.obs import MetricsRegistry, Tracer, activated
from repro.stream import (
    AssocSpec,
    Checkpointer,
    MemorySource,
    StreamConsumer,
    WindowedAnalytics,
    index_to_state,
)


class AddOne(MapStage):
    """value <- doc_id + 1 (pure, per-document)."""

    name = "add-one"

    def process_document(self, document):
        """Record a derived artifact."""
        document.put("value", document.doc_id + 1)


class DropOdd(MapStage):
    """Discard documents with odd ids."""

    name = "drop-odd"

    def process_document(self, document):
        """Discard odd doc ids with a recorded reason."""
        if document.doc_id % 2:
            document.discard(self.stage_name, "odd")


def _docs(n):
    return [Document(doc_id=i) for i in range(n)]


def _spans_by_name(tracer):
    by_name = {}
    for span in tracer.finished():
        by_name.setdefault(span.name, []).append(span)
    return by_name


class TestEngineEquivalence:
    @pytest.mark.parametrize("workers", [0, 4])
    def test_traced_outputs_bit_identical(self, workers):
        def build():
            return PipelineRunner(
                [AddOne(), DropOdd()], batch_size=4, workers=workers
            )

        untraced = build().run(_docs(23))
        with activated(Tracer(), MetricsRegistry()):
            traced = build().run(_docs(23))
        assert traced.documents == untraced.documents
        assert traced.discarded == untraced.discarded
        # Reports agree on everything except instrumentation extras.
        for mine, theirs in zip(
            traced.report.stages, untraced.report.stages
        ):
            assert mine.name == theirs.name
            assert mine.docs_in == theirs.docs_in
            assert mine.docs_out == theirs.docs_out
            assert mine.discarded == theirs.discarded
            assert mine.batches == theirs.batches
        assert untraced.report.metrics is None
        assert traced.report.metrics["counters"]["engine.runs"] == 1

    @pytest.mark.parametrize("workers", [0, 4])
    def test_stage_batch_nesting(self, workers):
        tracer = Tracer()
        with activated(tracer, MetricsRegistry()):
            PipelineRunner(
                [AddOne(), DropOdd()], batch_size=4, workers=workers
            ).run(_docs(10))
        by_name = _spans_by_name(tracer)
        (run,) = by_name["pipeline:run"]
        assert run.parent_id is None
        stages = by_name["stage:add-one"] + by_name["stage:drop-odd"]
        assert all(s.parent_id == run.span_id for s in stages)
        stage_ids = {s.span_id for s in stages}
        batches = by_name["batch"]
        assert len(batches) == 6  # 3 batches per stage
        assert all(b.parent_id in stage_ids for b in batches)

    def test_hot_path_nests_under_ambient_span(self):
        tracer = Tracer()
        metrics = MetricsRegistry()
        lists = [
            [("a", 0.9), ("b", 0.5)],
            [("b", 0.8), ("a", 0.4)],
        ]
        untraced = fagin_merge(lists, k=1)
        with activated(tracer, metrics):
            with tracer.span("stage:record-link") as stage:
                traced = fagin_merge(lists, k=1)
        assert traced == untraced
        (merge,) = _spans_by_name(tracer)["fagin:fa"]
        assert merge.parent_id == stage.span_id
        assert merge.tags["lists"] == 2
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["linking.fagin.fa.merges"] == 1


# ----------------------------------------------------------------------
# stream: traced crash/resume == untraced uninterrupted
# ----------------------------------------------------------------------

CITIES = ["seattle", "boston", "denver"]
CARS = ["suv", "compact", "luxury"]


class Crash(RuntimeError):
    """Simulated consumer death at a failpoint."""


def _make_pairs(n=40, seed=5):
    """Deterministic (timestamp, document) arrivals; fresh each call."""
    rng = random.Random(seed)
    pairs = []
    for i in range(n):
        fields = {"city": rng.choice(CITIES), "car": rng.choice(CARS)}
        document = Document(
            doc_id=i, channel="test", text=f"call {i}",
            artifacts={"index_fields": fields},
        )
        pairs.append((i // 9, document))
    return pairs


def _filter(document):
    """Drop a deterministic subset to exercise funnel accounting."""
    if document.doc_id % 13 == 9:
        document.discard("filter", "synthetic noise")


def _build(checkpoint_path=None, crash_on=None, crash_at=None):
    """A fresh consumer over a freshly generated stream."""
    seen = {"count": 0}

    def failpoint(event):
        if event == crash_on:
            seen["count"] += 1
            if seen["count"] >= crash_at:
                raise Crash(f"{event} #{seen['count']}")

    return StreamConsumer(
        MemorySource(_make_pairs()),
        [
            FunctionStage("filter", _filter, pure=True),
            ConceptIndexStage(on_duplicate="replace"),
        ],
        window=WindowedAnalytics(
            3,
            assoc_specs=[AssocSpec(("field", "city"), ("field", "car"))],
        ),
        checkpointer=(
            Checkpointer(checkpoint_path) if checkpoint_path else None
        ),
        batch_docs=7,
        checkpoint_interval=2,
        failpoint=failpoint if crash_on else None,
    )


def _assert_same_final_state(resumed, reference):
    """Bit-identical index, window and funnel counters."""
    assert index_to_state(resumed.index) == index_to_state(
        reference.index
    )
    assert resumed.window.to_state() == reference.window.to_state()
    assert resumed.committed_offset == reference.committed_offset
    assert resumed.report.processed == reference.report.processed
    assert resumed.report.discarded == reference.report.discarded
    assert resumed.report.upserts == reference.report.upserts
    assert resumed.report.batches == reference.report.batches
    table = resumed.window.assoc_snapshot(0)
    expected = reference.window.assoc_snapshot(0)
    assert table.cells() == expected.cells()


class TestStreamEquivalence:
    @pytest.mark.parametrize("crash_at", [1, 3, 5])
    def test_traced_crash_resume_matches_untraced_uninterrupted(
        self, tmp_path, crash_at
    ):
        """The property the checkpoint format must preserve: tracing a
        crashed-and-resumed consumer leaves its final state identical
        to an untraced consumer that never crashed."""
        reference = _build()
        reference.run()

        tracer = Tracer()
        with activated(tracer, MetricsRegistry()):
            crashed = _build(
                tmp_path / "ck.json", "batch-committed", crash_at
            )
            with pytest.raises(Crash):
                crashed.run()
            resumed = _build(tmp_path / "ck.json")
            resumed.restore()
            resumed.run()
        _assert_same_final_state(resumed, reference)
        by_name = _spans_by_name(tracer)
        assert len(by_name["stream:batch"]) >= crash_at
        assert "stream:checkpoint" in by_name
        if crash_at > 2:  # a checkpoint landed before the crash
            assert "stream:restore" in by_name
        # Every stream:batch span contains a nested pipeline run.
        batch_ids = {s.span_id for s in by_name["stream:batch"]}
        runs = by_name["pipeline:run"]
        assert all(r.parent_id in batch_ids for r in runs)

    def test_traced_uninterrupted_matches_untraced(self, tmp_path):
        reference = _build()
        reference.run()
        with activated(Tracer(), MetricsRegistry()):
            traced = _build(tmp_path / "ck.json")
            traced.run()
        _assert_same_final_state(traced, reference)
        # The checkpoint file itself is identical modulo wall time,
        # which lives only inside the report block.
        state = Checkpointer(tmp_path / "ck.json").load()
        assert state["offset"] == reference.committed_offset
        assert state["index"] == index_to_state(reference.index)
        assert state["window"] == reference.window.to_state()


class TestZeroRowFunnel:
    def test_fully_discarding_run_keeps_downstream_stage_rows(self):
        """A batch in which every document is discarded must still
        produce a row for every stage (zero out-count, not absence)."""

        class DropAll(MapStage):
            """Discards everything."""

            name = "drop-all"

            def process_document(self, document):
                """Discard unconditionally."""
                document.discard(self.stage_name, "all")

        report = PipelineRunner(
            [DropAll(), AddOne()], batch_size=4
        ).run(_docs(9)).report
        drop = report.stage("drop-all")
        assert (drop.docs_in, drop.docs_out, drop.discarded) == (9, 0, 9)
        downstream = report.stage("add-one")
        assert (downstream.docs_in, downstream.docs_out) == (0, 0)
        assert report.total_out == 0

    def test_fully_skipped_micro_batch_still_emits_stage_rows(
        self, tmp_path
    ):
        """Re-delivering only already-committed offsets must produce
        zero-count stage rows, not an empty stage report (regression:
        the consumer used to skip the stage graph for such batches)."""
        consumer = _build(tmp_path / "ck.json")
        consumer.run()

        resumed = _build(tmp_path / "ck.json")
        assert resumed.restore()
        resumed.source.seek(0)
        assert resumed.step()  # a micro-batch of pure re-deliveries
        report = resumed.stage_report()
        assert [s.name for s in report.stages] == ["filter", "index"]
        for stats in report.stages:
            assert (stats.docs_in, stats.docs_out) == (0, 0)
        assert resumed.report.skipped > 0
