"""Tests for the baseline churn classifiers."""

from collections import Counter

import pytest

from repro.churn.baselines import HybridKnnLr, KeywordRuleBaseline
from tests.churn.test_churn import toy_training_set


class TestHybridKnnLr:
    def test_learns_separable_data(self):
        features, labels, extractor = toy_training_set(20)
        model = HybridKnnLr(k=3).fit(features, labels)
        churn_prob = model.predict_proba(
            [extractor.extract("i want to disconnect my connection")]
        )[0]
        loyal_prob = model.predict_proba(
            [extractor.extract("please send me my balance")]
        )[0]
        assert churn_prob > 0.5
        assert loyal_prob < 0.5

    def test_probabilities_bounded(self):
        features, labels, _ = toy_training_set(10)
        model = HybridKnnLr(k=3).fit(features, labels)
        for probability in model.predict_proba(features):
            assert 0.0 <= probability <= 1.0

    def test_k_validation(self):
        with pytest.raises(ValueError):
            HybridKnnLr(k=0)

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            HybridKnnLr().fit([Counter({"a": 1})], [True])

    def test_unfitted_rejected(self):
        with pytest.raises(RuntimeError):
            HybridKnnLr().predict_proba([Counter()])

    def test_unseen_features_handled(self):
        features, labels, _ = toy_training_set(10)
        model = HybridKnnLr(k=3).fit(features, labels)
        probability = model.predict_proba([Counter({"w:novel": 2})])[0]
        assert 0.0 <= probability <= 1.0

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            HybridKnnLr().fit([Counter()], [True, False])


class TestKeywordRuleBaseline:
    def test_flags_churn_keywords(self):
        _, _, extractor = toy_training_set(1)
        model = KeywordRuleBaseline()
        assert model.predict(
            [extractor.extract("please disconnect my line")]
        ) == [True]

    def test_misses_implicit_churners(self):
        _, _, extractor = toy_training_set(1)
        model = KeywordRuleBaseline()
        # Implicit churn language without the magic keywords.
        assert model.predict(
            [extractor.extract("your competitor has a cheaper plan")]
        ) == [False]

    def test_stateless_fit(self):
        model = KeywordRuleBaseline()
        assert model.fit([], []) is model

    def test_concept_feature_triggers(self):
        model = KeywordRuleBaseline()
        assert model.predict([Counter({"c:churn intent": 3})]) == [True]
