"""Tests for churn features, classifiers, imbalance handling, evaluation."""

from collections import Counter

import pytest

from repro.churn.classifier import LogisticRegression, MultinomialNaiveBayes
from repro.churn.evaluation import ChurnReport, evaluate_churn_classifier
from repro.churn.features import ChurnFeatureExtractor
from repro.churn.imbalance import class_prior_weights, undersample


def toy_training_set(n_per_class=30):
    """Separable toy set: churners talk drivers, others talk balance."""
    churner_texts = [
        "your competitor has a cheaper plan i want to disconnect",
        "my complaint has not been resolved i have to leave",
        "i feel robbed when paying my bill please deactivate my number",
    ]
    loyal_texts = [
        "please send me my bill by email",
        "i want to know my current balance",
        "thank you for resolving my issue quickly",
    ]
    extractor = ChurnFeatureExtractor()
    features, labels = [], []
    for i in range(n_per_class):
        features.append(extractor.extract(churner_texts[i % 3]))
        labels.append(True)
        features.append(extractor.extract(loyal_texts[i % 3]))
        labels.append(False)
    return features, labels, extractor


class TestChurnFeatureExtractor:
    def test_word_features(self):
        extractor = ChurnFeatureExtractor()
        features = extractor.extract("my bill is too high")
        assert features["w:bill"] >= 1

    def test_concept_features_weighted(self):
        extractor = ChurnFeatureExtractor(concept_weight=5)
        features = extractor.extract("i feel robbed these days")
        assert features["c:billing_issue"] == 5

    def test_multiple_surfaces_accumulate(self):
        extractor = ChurnFeatureExtractor(concept_weight=5)
        features = extractor.extract("i feel robbed when paying my bill")
        assert features["c:billing_issue"] == 10

    def test_stopwords_excluded(self):
        features = ChurnFeatureExtractor().extract("the a an is")
        assert not any(key.startswith("w:the") for key in features)

    def test_digits_excluded(self):
        features = ChurnFeatureExtractor().extract("pay 500 now")
        assert "w:500" not in features

    def test_words_can_be_disabled(self):
        extractor = ChurnFeatureExtractor(use_words=False)
        features = extractor.extract("my bill is too high")
        assert all(key.startswith("c:") for key in features)

    def test_extract_many(self):
        extractor = ChurnFeatureExtractor()
        assert len(extractor.extract_many(["a bill", "a plan"])) == 2


class TestMultinomialNaiveBayes:
    def test_learns_separable_data(self):
        features, labels, extractor = toy_training_set()
        nb = MultinomialNaiveBayes().fit(features, labels)
        churn_prob = nb.predict_proba(
            [extractor.extract("i want to disconnect your network is bad")]
        )[0]
        loyal_prob = nb.predict_proba(
            [extractor.extract("please send my balance")]
        )[0]
        assert churn_prob > 0.5
        assert loyal_prob < 0.5

    def test_probabilities_bounded(self):
        features, labels, _ = toy_training_set()
        nb = MultinomialNaiveBayes().fit(features, labels)
        for probability in nb.predict_proba(features):
            assert 0.0 <= probability <= 1.0

    def test_prior_shift_raises_detection(self):
        features, labels, extractor = toy_training_set()
        ambiguous = [extractor.extract("my bill and my plan")]
        neutral = MultinomialNaiveBayes().fit(features, labels)
        tilted = MultinomialNaiveBayes(class_priors=(0.05, 0.95)).fit(
            features, labels
        )
        assert tilted.predict_proba(ambiguous)[0] > (
            neutral.predict_proba(ambiguous)[0]
        )

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            MultinomialNaiveBayes().fit([Counter({"a": 1})], [True])

    def test_unfitted_predict_rejected(self):
        with pytest.raises(RuntimeError):
            MultinomialNaiveBayes().predict_proba([Counter()])

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            MultinomialNaiveBayes().fit([Counter()], [True, False])


class TestLogisticRegression:
    def test_learns_separable_data(self):
        features, labels, extractor = toy_training_set()
        lr = LogisticRegression(epochs=300).fit(features, labels)
        churn_prob = lr.predict_proba(
            [extractor.extract("deactivate my number i have to leave")]
        )[0]
        loyal_prob = lr.predict_proba(
            [extractor.extract("thank you for resolving my issue")]
        )[0]
        assert churn_prob > 0.5
        assert loyal_prob < 0.5

    def test_positive_weight_raises_recall(self):
        features, labels, _ = toy_training_set()
        # Make it imbalanced: drop most positives.
        imbalanced_f = features[:4] + [
            f for f, l in zip(features, labels) if not l
        ]
        imbalanced_y = labels[:4] + [False] * sum(
            1 for l in labels if not l
        )
        plain = LogisticRegression(epochs=200).fit(
            imbalanced_f, imbalanced_y
        )
        weighted = LogisticRegression(
            epochs=200, positive_weight=8.0
        ).fit(imbalanced_f, imbalanced_y)
        positives = [f for f, l in zip(features, labels) if l]
        plain_hits = sum(plain.predict(positives))
        weighted_hits = sum(weighted.predict(positives))
        assert weighted_hits >= plain_hits

    def test_unseen_features_ignored(self):
        features, labels, _ = toy_training_set()
        lr = LogisticRegression(epochs=50).fit(features, labels)
        probability = lr.predict_proba([Counter({"w:neverseen": 3})])[0]
        assert 0.0 <= probability <= 1.0

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            LogisticRegression().fit([Counter({"a": 1})], [True])


class TestImbalance:
    def test_undersample_keeps_all_minority(self):
        features = [Counter({"x": 1}) for _ in range(100)]
        labels = [i < 5 for i in range(100)]
        sampled_features, sampled_labels = undersample(
            features, labels, ratio=2.0
        )
        assert sum(sampled_labels) == 5
        assert len(sampled_labels) == 15  # 5 minority + 10 majority

    def test_undersample_deterministic(self):
        features = [Counter({"x": i}) for i in range(50)]
        labels = [i < 5 for i in range(50)]
        a = undersample(features, labels, seed=3)
        b = undersample(features, labels, seed=3)
        assert a == b

    def test_undersample_requires_both_classes(self):
        with pytest.raises(ValueError):
            undersample([Counter()], [True])

    def test_undersample_invalid_ratio(self):
        with pytest.raises(ValueError):
            undersample([Counter(), Counter()], [True, False], ratio=0)

    def test_class_prior_weights(self):
        negative, positive = class_prior_weights(
            [True] * 3 + [False] * 97, boost=2.0
        )
        assert positive > negative
        assert negative + positive == pytest.approx(1.0)

    def test_class_prior_weights_single_class(self):
        with pytest.raises(ValueError):
            class_prior_weights([True, True])


class TestEvaluation:
    def test_confusion_counts(self):
        class Stub:
            def predict(self, features, threshold=0.5):
                return [True, True, False, False]

        report = evaluate_churn_classifier(
            Stub(), [None] * 4, [True, False, True, False]
        )
        assert report.true_positives == 1
        assert report.false_positives == 1
        assert report.false_negatives == 1
        assert report.true_negatives == 1
        assert report.detection_rate == 0.5
        assert report.precision == 0.5

    def test_empty_denominators(self):
        report = ChurnReport(0, 0, 0, 0)
        assert report.detection_rate == 0.0
        assert report.precision == 0.0
        assert report.f1 == 0.0
        assert report.false_positive_rate == 0.0

    def test_alignment_checked(self):
        class Stub:
            def predict(self, features, threshold=0.5):
                return []

        with pytest.raises(ValueError):
            evaluate_churn_classifier(Stub(), [None], [])
