"""Checkpoint resilience: retries, corruption, previous-good fallback."""

import json
import os

import pytest

from repro.faults import (
    FaultPlan,
    FaultSpec,
    InjectedIOError,
    RetryPolicy,
    injecting,
)
from repro.obs import MetricsRegistry, activated
from repro.stream import CheckpointCorrupt, Checkpointer
from repro.stream.checkpoint import CHECKPOINT_VERSION

STATE = {"offset": 41, "index": {"documents": []}}

NO_SLEEP = lambda _delay: None  # noqa: E731


def retrying_checkpointer(path, max_attempts=6):
    return Checkpointer(
        path,
        retry=RetryPolicy(
            max_attempts=max_attempts, base_delay=0.0, max_delay=0.0,
            seed=1,
        ),
        sleep=NO_SLEEP,
    )


class TestRoundTrip:
    def test_save_load_round_trip(self, tmp_path):
        checkpointer = Checkpointer(tmp_path / "ck.json")
        checkpointer.save(STATE)
        loaded = checkpointer.load()
        assert loaded["offset"] == 41
        assert loaded["version"] == CHECKPOINT_VERSION
        assert "sha256" not in loaded  # stamp verified then stripped

    def test_save_rotates_previous_good_copy(self, tmp_path):
        checkpointer = Checkpointer(tmp_path / "ck.json")
        checkpointer.save({"offset": 1})
        checkpointer.save({"offset": 2})
        assert os.path.exists(checkpointer.prev_path)
        assert checkpointer.load()["offset"] == 2

    def test_clear_removes_both_copies(self, tmp_path):
        checkpointer = Checkpointer(tmp_path / "ck.json")
        checkpointer.save({"offset": 1})
        checkpointer.save({"offset": 2})
        checkpointer.clear()
        assert not os.path.exists(checkpointer.path)
        assert not os.path.exists(checkpointer.prev_path)
        assert checkpointer.load() is None


class TestCorruptionFallback:
    def _corrupt_current(self, checkpointer):
        with open(checkpointer.path, "r+b") as handle:
            data = bytearray(handle.read())
            data[len(data) // 2] ^= 0xFF
            handle.seek(0)
            handle.write(bytes(data))

    def test_corrupted_current_falls_back_to_previous(self, tmp_path):
        metrics = MetricsRegistry()
        checkpointer = Checkpointer(tmp_path / "ck.json")
        checkpointer.save({"offset": 1})
        checkpointer.save({"offset": 2})
        self._corrupt_current(checkpointer)
        with activated(None, metrics):
            loaded = checkpointer.load()
        assert loaded["offset"] == 1  # the previous good copy
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["checkpoint.corrupt"] == 1
        assert snapshot["counters"]["checkpoint.fallback"] == 1

    def test_corrupt_with_no_previous_raises(self, tmp_path):
        checkpointer = Checkpointer(tmp_path / "ck.json")
        checkpointer.save({"offset": 1})
        self._corrupt_current(checkpointer)
        with pytest.raises(CheckpointCorrupt, match="no previous"):
            checkpointer.load()

    def test_both_copies_corrupt_raises(self, tmp_path):
        checkpointer = Checkpointer(tmp_path / "ck.json")
        checkpointer.save({"offset": 1})
        checkpointer.save({"offset": 2})
        self._corrupt_current(checkpointer)
        with open(checkpointer.prev_path, "w", encoding="utf-8") as fh:
            fh.write("{ torn")
        with pytest.raises(CheckpointCorrupt):
            checkpointer.load()

    def test_missing_current_with_rotated_copy_recovers(self, tmp_path):
        # A crash between save()'s two renames leaves only .prev.
        checkpointer = Checkpointer(tmp_path / "ck.json")
        checkpointer.save({"offset": 1})
        os.replace(checkpointer.path, checkpointer.prev_path)
        assert checkpointer.load()["offset"] == 1

    def test_injected_byte_corruption_detected(self, tmp_path):
        plan = FaultPlan(
            seed=5,
            specs=(
                FaultSpec(point="checkpoint.bytes", kind="corrupt",
                          times=1),
            ),
        )
        checkpointer = Checkpointer(tmp_path / "ck.json")
        with injecting(plan.injector()):
            checkpointer.save({"offset": 7})   # corrupted on disk
            checkpointer.save({"offset": 8})   # clean (times=1 spent)
        # Current (offset 8) is clean; the corrupted copy rotated to
        # .prev where a *current*-copy failure would have found it.
        assert checkpointer.load()["offset"] == 8

    def test_legacy_unstamped_payload_still_loads(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text(json.dumps({"version": 2, "offset": 5}))
        assert Checkpointer(path).load()["offset"] == 5


class TestRetries:
    def _plan(self, point, times):
        return FaultPlan(
            seed=3,
            specs=(FaultSpec(point=point, kind="io", times=times),),
        )

    def test_save_retries_through_io_faults(self, tmp_path):
        checkpointer = retrying_checkpointer(tmp_path / "ck.json")
        with injecting(self._plan("checkpoint.save", 3).injector()):
            checkpointer.save(STATE)
        assert checkpointer.load()["offset"] == 41

    def test_load_retries_through_io_faults(self, tmp_path):
        checkpointer = retrying_checkpointer(tmp_path / "ck.json")
        checkpointer.save(STATE)
        with injecting(self._plan("checkpoint.load", 3).injector()):
            assert checkpointer.load()["offset"] == 41

    def test_unretried_save_propagates_injected_fault(self, tmp_path):
        checkpointer = Checkpointer(tmp_path / "ck.json")  # no policy
        with injecting(self._plan("checkpoint.save", 1).injector()):
            with pytest.raises(InjectedIOError):
                checkpointer.save(STATE)

    def test_retry_exhaustion_propagates(self, tmp_path):
        checkpointer = retrying_checkpointer(
            tmp_path / "ck.json", max_attempts=2
        )
        with injecting(self._plan("checkpoint.save", 5).injector()):
            with pytest.raises(InjectedIOError):
                checkpointer.save(STATE)
