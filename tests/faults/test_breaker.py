"""Circuit breakers: state machine transitions under a fake clock."""

import pytest

from repro.faults import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    BreakerBoard,
    BreakerOpen,
    CircuitBreaker,
)
from repro.obs import MetricsRegistry, activated


class FakeClock:
    """A hand-cranked monotonic clock."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_breaker(clock, threshold=3, cooldown=5.0, probes=1):
    return CircuitBreaker(
        "unit", failure_threshold=threshold, cooldown=cooldown,
        half_open_probes=probes, clock=clock,
    )


def trip(breaker, failures):
    for _ in range(failures):
        breaker.allow()
        breaker.record_failure()


class TestValidation:
    def test_knobs_validated(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker("b", failure_threshold=0)
        with pytest.raises(ValueError, match="cooldown"):
            CircuitBreaker("b", cooldown=0)
        with pytest.raises(ValueError, match="half_open_probes"):
            CircuitBreaker("b", half_open_probes=0)


class TestTransitions:
    def test_closed_admits_and_success_resets_streak(self):
        breaker = make_breaker(FakeClock(), threshold=3)
        for _ in range(2):
            breaker.allow()
            breaker.record_failure()
        breaker.allow()
        breaker.record_success()  # streak broken
        trip(breaker, 2)
        assert breaker.state == STATE_CLOSED  # 2 < threshold again

    def test_threshold_failures_open(self):
        breaker = make_breaker(FakeClock(), threshold=3)
        trip(breaker, 3)
        assert breaker.state == STATE_OPEN

    def test_open_rejects_with_remaining_cooldown(self):
        clock = FakeClock()
        breaker = make_breaker(clock, cooldown=5.0)
        trip(breaker, 3)
        clock.advance(2.0)
        with pytest.raises(BreakerOpen) as info:
            breaker.allow()
        assert info.value.name == "unit"
        assert info.value.retry_after == pytest.approx(3.0)

    def test_cooldown_elapse_goes_half_open(self):
        clock = FakeClock()
        breaker = make_breaker(clock, cooldown=5.0)
        trip(breaker, 3)
        clock.advance(5.0)
        breaker.allow()  # the probe is admitted
        assert breaker.state == STATE_HALF_OPEN

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = make_breaker(clock, cooldown=5.0)
        trip(breaker, 3)
        clock.advance(5.0)
        breaker.allow()
        breaker.record_success()
        assert breaker.state == STATE_CLOSED
        breaker.allow()  # and traffic flows again

    def test_probe_failure_reopens_for_fresh_cooldown(self):
        clock = FakeClock()
        breaker = make_breaker(clock, cooldown=5.0)
        trip(breaker, 3)
        clock.advance(5.0)
        breaker.allow()
        breaker.record_failure()
        assert breaker.state == STATE_OPEN
        clock.advance(4.9)  # fresh cooldown: not elapsed yet
        with pytest.raises(BreakerOpen):
            breaker.allow()

    def test_half_open_admits_only_probe_quota(self):
        clock = FakeClock()
        breaker = make_breaker(clock, cooldown=5.0, probes=1)
        trip(breaker, 3)
        clock.advance(5.0)
        breaker.allow()  # the one probe slot
        with pytest.raises(BreakerOpen):
            breaker.allow()  # second concurrent call rejected

    def test_record_ignored_releases_probe_without_outcome(self):
        clock = FakeClock()
        breaker = make_breaker(clock, cooldown=5.0, probes=1)
        trip(breaker, 3)
        clock.advance(5.0)
        breaker.allow()
        breaker.record_ignored()  # e.g. the probe was a 400
        assert breaker.state == STATE_HALF_OPEN  # no verdict either way
        breaker.allow()  # slot is free for a real probe
        breaker.record_success()
        assert breaker.state == STATE_CLOSED

    def test_force_open_and_reset(self):
        breaker = make_breaker(FakeClock())
        breaker.force_open()
        assert breaker.state == STATE_OPEN
        breaker.reset()
        assert breaker.state == STATE_CLOSED
        breaker.allow()


class TestObservability:
    def test_counters_and_gauge_written(self):
        metrics = MetricsRegistry()
        clock = FakeClock()
        with activated(None, metrics):
            breaker = make_breaker(clock, cooldown=5.0)
            trip(breaker, 3)
            with pytest.raises(BreakerOpen):
                breaker.allow()
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["breaker.opened.unit"] == 1
        assert snapshot["counters"]["breaker.rejected.unit"] == 1
        assert snapshot["gauges"]["breaker.state.unit"] == 2


class TestBoard:
    def test_get_or_create_is_stable(self):
        board = BreakerBoard(clock=FakeClock())
        assert board.breaker("cube") is board.breaker("cube")
        assert board.breaker("cube") is not board.breaker("trends")

    def test_kinds_are_isolated(self):
        clock = FakeClock()
        board = BreakerBoard(failure_threshold=2, clock=clock)
        trip(board.breaker("cube"), 2)
        assert board.breaker("cube").state == STATE_OPEN
        board.breaker("trends").allow()  # untouched kind still admits
        assert board.states() == {
            "cube": STATE_OPEN, "trends": STATE_CLOSED
        }
