"""Stream chaos: crash/retry/resume under a seeded fault plan.

The correctness bar of the resilience layer, asserted end to end:
under *any* seeded fault schedule — injected checkpoint I/O errors,
byte corruption with previous-good fallback, fatal crashes at commit
boundaries, replay-log read failures — a crash/retry/resume run must
finish with results bit-identical (``==``) to an uninterrupted run.

The CI chaos job executes this module once per seed in its matrix
(``BIVOC_CHAOS_SEED``); the plan's ``times`` caps guarantee the retry
loops converge, so these are certainties, not probabilities.
"""

import os

import pytest

from repro.faults import (
    FaultPlan,
    FaultSpec,
    InjectedFault,
    InjectedIOError,
    RetryPolicy,
    default_chaos_plan,
    injecting,
)
from repro.stream import (
    CheckpointCorrupt,
    Checkpointer,
    ReplayLogSource,
    write_replay_log,
)
from repro.stream.checkpoint import index_to_state

from tests.faults.chaosenv import chaos_seed
from tests.serve.corpus import make_consumer, make_pairs

NO_SLEEP = lambda _delay: None  # noqa: E731

MAX_RESTARTS = 60  # far above any times-capped plan's crash budget


def run_reference(pairs, shards):
    """The uninterrupted run: no faults, no checkpoints."""
    consumer = make_consumer(pairs, shards=shards)
    consumer.run()
    return consumer


def run_chaos(pairs, shards, plan, checkpoint_path, seed):
    """Crash/retry/resume the same stream under ``plan``.

    Each injected crash kills the consumer outright; the next
    incarnation is built from scratch (a real crash loses all
    in-memory state) and resumes from whatever checkpoint survived.
    Returns ``(consumer, restarts)``.
    """
    retry = RetryPolicy(
        max_attempts=8, base_delay=0.0, max_delay=0.0, seed=seed
    )
    restarts = 0
    with injecting(plan.injector(sleep=NO_SLEEP)):
        while True:
            consumer = make_consumer(pairs, shards=shards)
            consumer.checkpointer = Checkpointer(
                checkpoint_path, retry=retry, sleep=NO_SLEEP
            )
            try:
                consumer.restore()
            except CheckpointCorrupt:
                # Every copy corrupted: cold start is the last
                # resort, and at-least-once delivery makes it safe.
                consumer.checkpointer.clear()
                continue
            try:
                consumer.run()
                return consumer, restarts
            except InjectedFault:
                restarts += 1
                assert restarts <= MAX_RESTARTS, (
                    f"runaway restart loop under plan "
                    f"{plan.to_json_dict()}"
                )


@pytest.mark.parametrize("shards", [1, 4])
def test_chaos_run_bit_identical_to_uninterrupted(shards, tmp_path):
    seed = chaos_seed()
    pairs = make_pairs(seed=seed)
    plan = default_chaos_plan(seed)
    reference = run_reference(pairs, shards)
    chaotic, restarts = run_chaos(
        pairs, shards, plan, os.fspath(tmp_path / "ck.json"), seed
    )
    assert index_to_state(chaotic.index) == index_to_state(
        reference.index
    ), f"diverged after {restarts} crashes; plan {plan.to_json_dict()}"
    assert chaotic.committed_offset == reference.committed_offset


def test_chaos_faults_actually_fire():
    """The suite must not pass vacuously: the plan injects something.

    Uses a fresh injector over the same schedule the bit-identity test
    armed; with every ``probability < 1`` spec drawn 40 times, at
    least one spec fires for any seed.
    """
    plan = default_chaos_plan(chaos_seed())
    injector = plan.injector(sleep=NO_SLEEP)
    for spec in plan.specs:
        for _ in range(40):
            try:
                if spec.kind == "corrupt":
                    injector.corrupt(spec.point, b"payload-bytes")
                else:
                    injector.fault_point(spec.point)
            except InjectedFault:
                pass
    fired = sum(c["fired"] for c in injector.counts().values())
    assert fired > 0


@pytest.mark.parametrize("shards", [1, 4])
def test_single_targeted_crash_then_resume(shards, tmp_path):
    """One fatal fault at the second commit, no probability draws."""
    pairs = make_pairs(seed=chaos_seed())
    plan = FaultPlan(
        seed=chaos_seed(),
        specs=(
            FaultSpec(point="stream.batch-committed", kind="fatal",
                      times=1, after=1),
        ),
    )
    reference = run_reference(pairs, shards)
    chaotic, restarts = run_chaos(
        pairs, shards, plan, os.fspath(tmp_path / "ck.json"),
        chaos_seed(),
    )
    assert restarts == 1
    assert index_to_state(chaotic.index) == index_to_state(
        reference.index
    )


class TestReplayLogFaults:
    def _write_log(self, tmp_path):
        pairs = make_pairs(n=12, seed=chaos_seed())
        path = os.fspath(tmp_path / "replay.jsonl")
        write_replay_log(
            path, ((ts, doc) for ts, doc in pairs)
        )
        return path, pairs

    def test_replay_read_retried_through_io_faults(self, tmp_path):
        path, pairs = self._write_log(tmp_path)
        plan = FaultPlan(
            seed=chaos_seed(),
            specs=(FaultSpec(point="replay.read", kind="io", times=2),),
        )
        retry = RetryPolicy(
            max_attempts=4, base_delay=0.0, max_delay=0.0,
            seed=chaos_seed(),
        )
        with injecting(plan.injector(sleep=NO_SLEEP)):
            source = ReplayLogSource(path, retry=retry, sleep=NO_SLEEP)
        assert len(source) == len(pairs)
        clean = ReplayLogSource(path)
        assert [r.document.doc_id for r in source.poll(100)] == [
            r.document.doc_id for r in clean.poll(100)
        ]

    def test_unretried_replay_read_propagates(self, tmp_path):
        path, _ = self._write_log(tmp_path)
        plan = FaultPlan(
            seed=chaos_seed(),
            specs=(FaultSpec(point="replay.read", kind="io", times=1),),
        )
        with injecting(plan.injector(sleep=NO_SLEEP)):
            with pytest.raises(InjectedIOError):
                ReplayLogSource(path)
