"""Serve chaos: faulted queries, degraded mode, deadlines over HTTPish.

The serving half of the resilience bar: with the ``query.execute``
fault point armed, a retrying engine must answer every request with a
value ``==`` to the batch computation over the epoch it was stamped
with — including under concurrent writer-vs-readers stress.  An open
breaker must serve last-good answers marked ``degraded`` (or an
honest 503 with a retry hint when it has none), and an exhausted
deadline must answer 504.
"""

import threading

import pytest

from repro.faults import (
    BreakerBoard,
    BreakerOpen,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    injecting,
)
from repro.serve import QueryCache, QueryEngine, QuerySpec, plan_query
from repro.serve.api import api_query
from repro.stream import EpochStore

from tests.faults.chaosenv import chaos_seed
from tests.serve.corpus import make_consumer, make_pairs, reference_index

NO_SLEEP = lambda _delay: None  # noqa: E731

PAYLOADS = [
    {"kind": "assoc2d", "rows": ["field", "city"],
     "cols": ["field", "car"]},
    {"kind": "relfreq", "focus": [["field", "city", "boston"]],
     "candidates": ["field", "car"], "min_focus_count": 0},
    {"kind": "cube",
     "dimensions": [["field", "city"], ["field", "channel"]]},
    {"kind": "emerging", "dimension": ["field", "channel"],
     "min_total": 1},
]

CUBE = PAYLOADS[2]


def retrying_engine(epochs, **kwargs):
    """An engine whose retry budget outlasts any times-capped spec."""
    return QueryEngine(
        epochs,
        retry=RetryPolicy(
            max_attempts=10, base_delay=0.0, max_delay=0.0,
            seed=chaos_seed(),
        ),
        retry_sleep=NO_SLEEP,
        **kwargs,
    )


def query_fault_plan(times=8):
    return FaultPlan(
        seed=chaos_seed(),
        specs=(
            FaultSpec(point="query.execute", kind="io",
                      probability=0.5, times=times),
        ),
    )


@pytest.mark.parametrize("shards", [1, 4])
def test_faulted_responses_equal_batch_reference(shards):
    """Writer-vs-readers stress with execution faults being retried."""
    pairs = make_pairs(seed=chaos_seed())
    epochs = EpochStore(history=None)
    consumer = make_consumer(pairs, shards=shards, epochs=epochs)
    assert consumer.step()
    engine = retrying_engine(epochs, cache=QueryCache(capacity=32))
    specs = [QuerySpec.parse(dict(p)) for p in PAYLOADS]

    n_readers = 3
    queries_per_reader = 20
    start = threading.Barrier(n_readers + 1)
    samples = []
    samples_lock = threading.Lock()
    errors = []

    def writer():
        start.wait()
        while consumer.step():
            pass

    def reader(offset):
        start.wait()
        try:
            for i in range(queries_per_reader):
                spec_index = (i + offset) % len(specs)
                result = engine.query(specs[spec_index])
                with samples_lock:
                    samples.append(
                        (result.epoch, spec_index, result.value)
                    )
        except Exception as exc:
            errors.append(exc)

    threads = [threading.Thread(target=writer)] + [
        threading.Thread(target=reader, args=(n,))
        for n in range(n_readers)
    ]
    with injecting(query_fault_plan().injector(sleep=NO_SLEEP)) as inj:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    engine.close()
    assert not errors, errors
    assert len(samples) == n_readers * queries_per_reader

    references = {}
    for epoch, spec_index, value in samples:
        key = (epoch, spec_index)
        if key not in references:
            references[key] = plan_query(
                specs[spec_index],
                reference_index(pairs, epoch, shards=shards),
            )
        assert value == references[key], (
            f"epoch {epoch} spec {spec_index} diverged under "
            f"{inj.plan.to_json_dict()}"
        )


def _drained_setup(breakers=None, **engine_kwargs):
    """A fully ingested stream plus an engine over its epochs."""
    pairs = make_pairs(seed=chaos_seed())
    epochs = EpochStore(history=None)
    consumer = make_consumer(pairs, epochs=epochs)
    consumer.run()
    engine = QueryEngine(epochs, breakers=breakers, **engine_kwargs)
    return pairs, engine


class TestDegradedServing:
    def test_open_breaker_serves_last_good_as_degraded(self):
        breakers = BreakerBoard(failure_threshold=2, cooldown=60.0)
        pairs, engine = _drained_setup(breakers=breakers)
        good = engine.query(dict(CUBE))
        assert not good.degraded
        breakers.breaker("cube").force_open()
        degraded = engine.query(dict(CUBE))
        assert degraded.degraded
        assert degraded.cached
        assert degraded.value == good.value
        assert degraded.epoch == good.epoch
        assert degraded.to_wire()["degraded"] is True

    def test_open_breaker_without_last_good_is_503(self):
        breakers = BreakerBoard(failure_threshold=2, cooldown=60.0)
        pairs, engine = _drained_setup(breakers=breakers)
        breakers.breaker("cube").force_open()
        status, body = api_query(engine, dict(CUBE))
        assert status == 503
        assert body["code"] == "breaker-open"
        assert 0 < body["retry_after"] <= 60.0

    def test_breaker_opens_after_systematic_faults(self):
        # Unretried injected errors are execution failures: enough of
        # them must trip the kind's breaker.
        breakers = BreakerBoard(failure_threshold=3, cooldown=60.0)
        pairs, engine = _drained_setup(breakers=breakers)
        plan = FaultPlan(
            seed=chaos_seed(),
            specs=(FaultSpec(point="query.execute", kind="io"),),
        )
        with injecting(plan.injector(sleep=NO_SLEEP)):
            for _ in range(3):
                with pytest.raises(OSError):
                    engine.query(dict(CUBE))
            with pytest.raises(BreakerOpen):
                engine.query(dict(CUBE))

    def test_bad_requests_do_not_open_the_breaker(self):
        from repro.serve.queries import QueryError

        breakers = BreakerBoard(failure_threshold=2, cooldown=60.0)
        pairs, engine = _drained_setup(breakers=breakers)
        for _ in range(5):
            with pytest.raises(QueryError):
                engine.query({"kind": "no-such-kind"})
        assert breakers.breaker("no-such-kind").state == "closed"

    def test_degraded_answers_match_last_good_batch(self):
        breakers = BreakerBoard(failure_threshold=2, cooldown=60.0)
        pairs, engine = _drained_setup(breakers=breakers)
        spec = QuerySpec.parse(dict(CUBE))
        engine.query(spec)
        breakers.breaker("cube").force_open()
        degraded = engine.query(spec)
        batch = plan_query(
            spec, reference_index(pairs, len(pairs) - 1)
        )
        assert degraded.value == batch


class TestDeadlines:
    def test_generous_deadline_answers_normally(self):
        pairs, engine = _drained_setup(deadline_ms=60_000.0)
        status, body = api_query(engine, dict(CUBE))
        assert status == 200
        assert body["kind"] == "cube"

    def test_deadline_exhaustion_is_504(self):
        # Every attempt fails retryably and each backoff burns real
        # wall time, so the only exit from the retry loop is the
        # deadline check — the answer must be an honest 504.
        pairs, engine = _drained_setup(
            deadline_ms=50.0,
            retry=RetryPolicy(
                max_attempts=1000, base_delay=0.01, max_delay=0.01,
                seed=chaos_seed(),
            ),
        )
        plan = FaultPlan(
            seed=chaos_seed(),
            specs=(FaultSpec(point="query.execute", kind="io"),),
        )
        with injecting(plan.injector(sleep=NO_SLEEP)):
            status, body = api_query(engine, dict(CUBE))
        assert status == 504
        assert body["code"] == "deadline-exceeded"
