"""Retry policies and deadlines: classification, jitter, budgets."""

import pytest

from repro.faults import (
    Deadline,
    DeadlineExceeded,
    RetryPolicy,
    call_with_retry,
)
from repro.obs import MetricsRegistry, Tracer, activated


class FakeClock:
    """A hand-cranked monotonic clock."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class Flaky:
    """Fails ``failures`` times, then returns ``value``."""

    def __init__(self, failures, exc=OSError("transient"), value="ok"):
        self.failures = failures
        self.exc = exc
        self.value = value
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc
        return self.value


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="base_delay"):
            RetryPolicy(base_delay=-1)
        with pytest.raises(ValueError, match="max_delay"):
            RetryPolicy(base_delay=0.5, max_delay=0.1)

    def test_classification(self):
        policy = RetryPolicy()
        assert policy.is_retryable(OSError("disk"))
        assert policy.is_retryable(TimeoutError("slow"))
        assert policy.is_retryable(ConnectionError("reset"))
        assert not policy.is_retryable(ValueError("bad input"))
        assert not policy.is_retryable(KeyError("missing"))

    def test_deadline_exceeded_never_retryable(self):
        # DeadlineExceeded IS a TimeoutError, but retrying an
        # exhausted budget burns budget: it must be carved out.
        policy = RetryPolicy()
        assert not policy.is_retryable(DeadlineExceeded("op", 1.0))

    def test_custom_retryable_tuple(self):
        policy = RetryPolicy(retryable=(KeyError,))
        assert policy.is_retryable(KeyError("k"))
        assert not policy.is_retryable(OSError("io"))

    def test_jitter_is_seeded_and_reproducible(self):
        policy_a = RetryPolicy(seed=5)
        policy_b = RetryPolicy(seed=5)
        seq_a = [policy_a.next_delay(0.05) for _ in range(8)]
        seq_b = [policy_b.next_delay(0.05) for _ in range(8)]
        assert seq_a == seq_b
        assert seq_a != [RetryPolicy(seed=6).next_delay(0.05)
                         for _ in range(8)]

    def test_decorrelated_jitter_bounds(self):
        policy = RetryPolicy(base_delay=0.01, max_delay=0.2, seed=3)
        previous = policy.base_delay
        for _ in range(50):
            delay = policy.next_delay(previous)
            assert policy.base_delay <= delay <= policy.max_delay
            assert delay <= max(policy.base_delay, previous * 3.0)
            previous = delay

    def test_zero_base_delay_stays_zero(self):
        policy = RetryPolicy(base_delay=0.0, max_delay=0.0)
        assert policy.next_delay(0.0) == 0.0


class TestDeadline:
    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError, match="budget"):
            Deadline(0)

    def test_elapsed_remaining_expired(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        assert deadline.remaining() == 1.0
        clock.advance(0.4)
        assert deadline.elapsed() == pytest.approx(0.4)
        assert deadline.remaining() == pytest.approx(0.6)
        assert not deadline.expired()
        clock.advance(0.6)
        assert deadline.expired()
        assert deadline.remaining() == 0.0

    def test_check_raises_with_op_name(self):
        clock = FakeClock()
        deadline = Deadline.after_ms(250, clock=clock, op="query.cube")
        deadline.check()
        clock.advance(0.3)
        with pytest.raises(DeadlineExceeded, match="query.cube"):
            deadline.check()


class TestCallWithRetry:
    def _sleeps(self):
        slept = []
        return slept, slept.append

    def test_absorbs_transient_failures(self):
        flaky = Flaky(failures=2)
        slept, sleep = self._sleeps()
        policy = RetryPolicy(max_attempts=4, seed=1)
        assert call_with_retry(flaky, policy, sleep=sleep) == "ok"
        assert flaky.calls == 3
        assert len(slept) == 2

    def test_gives_up_after_max_attempts(self):
        flaky = Flaky(failures=10)
        policy = RetryPolicy(max_attempts=3, seed=1)
        with pytest.raises(OSError, match="transient"):
            call_with_retry(flaky, policy, sleep=lambda _d: None)
        assert flaky.calls == 3

    def test_non_retryable_propagates_immediately(self):
        flaky = Flaky(failures=5, exc=ValueError("systematic"))
        policy = RetryPolicy(max_attempts=5, seed=1)
        with pytest.raises(ValueError, match="systematic"):
            call_with_retry(flaky, policy, sleep=lambda _d: None)
        assert flaky.calls == 1

    def test_deadline_checked_before_each_attempt(self):
        clock = FakeClock()
        flaky = Flaky(failures=10)
        policy = RetryPolicy(max_attempts=10, base_delay=0.2, seed=1)
        deadline = Deadline(0.5, clock=clock, op="op")

        def sleep(delay):
            clock.advance(delay)

        with pytest.raises(DeadlineExceeded):
            call_with_retry(
                flaky, policy, deadline=deadline, sleep=sleep, op="op"
            )
        assert flaky.calls < 10  # budget, not attempts, ended the loop

    def test_backoff_clamped_to_remaining_budget(self):
        # A 10s backoff must not blow a 2s budget: the sleep is
        # clamped to the remaining time, so the caller hears about the
        # exhausted deadline *at* the deadline edge, not 8s late.
        clock = FakeClock()
        slept = []
        policy = RetryPolicy(
            max_attempts=5, base_delay=10.0, max_delay=10.0, seed=1
        )
        deadline = Deadline(2.0, clock=clock)

        def sleep(delay):
            slept.append(delay)
            clock.advance(delay)

        with pytest.raises(DeadlineExceeded):
            call_with_retry(
                Flaky(failures=5), policy, deadline=deadline,
                sleep=sleep,
            )
        assert slept == [2.0]  # one clamped sleep, then the edge
        assert clock.now == 2.0

    def test_on_retry_hook_observes_each_retry(self):
        seen = []
        call_with_retry(
            Flaky(failures=2),
            RetryPolicy(max_attempts=4, seed=1),
            sleep=lambda _d: None,
            on_retry=lambda attempt, exc, delay: seen.append(
                (attempt, type(exc).__name__)
            ),
        )
        assert seen == [(1, "OSError"), (2, "OSError")]

    def test_retry_observability_is_write_only(self):
        # Same flaky shape traced and untraced: same outcome, and the
        # traced run records spans + counters.
        policy_kwargs = dict(max_attempts=4, seed=7)
        untraced = call_with_retry(
            Flaky(failures=2), RetryPolicy(**policy_kwargs),
            sleep=lambda _d: None, op="unit",
        )
        tracer = Tracer()
        metrics = MetricsRegistry()
        with activated(tracer, metrics):
            traced = call_with_retry(
                Flaky(failures=2), RetryPolicy(**policy_kwargs),
                sleep=lambda _d: None, op="unit",
            )
        assert traced == untraced
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["retry.attempts.unit"] == 2
        spans = [s for s in tracer.finished()
                 if s.name == "retry:unit"]
        assert len(spans) == 2
