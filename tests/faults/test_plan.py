"""Fault plans: deterministic schedules, JSON round trips, arming."""

import pytest

from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    InjectedIOError,
    InjectedTimeout,
    NULL_INJECTOR,
    default_chaos_plan,
    fault_point,
    get_injector,
    injecting,
)

from tests.faults.chaosenv import chaos_seed


def _fire_log(injector, point, hits):
    """True/False per hit: did the point fire?"""
    log = []
    for _ in range(hits):
        try:
            injector.fault_point(point)
            log.append(False)
        except InjectedFault:
            log.append(True)
    return log


class TestSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(point="p", kind="explode")

    def test_probability_bounds(self):
        with pytest.raises(ValueError, match="probability"):
            FaultSpec(point="p", probability=1.5)

    def test_negative_schedule_fields_rejected(self):
        with pytest.raises(ValueError, match="times"):
            FaultSpec(point="p", times=-1)
        with pytest.raises(ValueError, match="after"):
            FaultSpec(point="p", after=-2)

    def test_duplicate_points_rejected(self):
        plan = FaultPlan(
            seed=1,
            specs=(FaultSpec(point="p"), FaultSpec(point="p")),
        )
        with pytest.raises(ValueError, match="twice"):
            plan.injector()


class TestDeterminism:
    def test_same_plan_same_firing_sequence(self):
        plan = default_chaos_plan(chaos_seed())
        points = [spec.point for spec in plan.specs]
        logs = []
        for _ in range(2):
            injector = plan.injector(sleep=lambda _d: None)
            logs.append(
                {p: _fire_log(injector, p, 40) for p in points
                 if plan.specs[points.index(p)].kind != "corrupt"}
            )
        assert logs[0] == logs[1]

    def test_different_seeds_differ_somewhere(self):
        spec = dict(point="p", kind="io", probability=0.5, times=None)
        log_a = _fire_log(
            FaultPlan(seed=1, specs=(FaultSpec(**spec),)).injector(),
            "p", 64,
        )
        log_b = _fire_log(
            FaultPlan(seed=2, specs=(FaultSpec(**spec),)).injector(),
            "p", 64,
        )
        assert log_a != log_b

    def test_json_round_trip_preserves_schedule(self):
        plan = default_chaos_plan(chaos_seed())
        clone = FaultPlan.from_json_dict(plan.to_json_dict())
        assert clone == plan
        point = plan.specs[0].point
        assert _fire_log(plan.injector(), point, 30) == _fire_log(
            clone.injector(), point, 30
        )


class TestSchedules:
    def test_after_skips_warmup_hits(self):
        plan = FaultPlan(
            seed=3, specs=(FaultSpec(point="p", after=3),)
        )
        assert _fire_log(plan.injector(), "p", 5) == [
            False, False, False, True, True
        ]

    def test_times_caps_total_firings(self):
        plan = FaultPlan(
            seed=3, specs=(FaultSpec(point="p", times=2),)
        )
        assert sum(_fire_log(plan.injector(), "p", 10)) == 2

    def test_kind_maps_to_exception_class(self):
        for kind, exc_class in (
            ("io", InjectedIOError),
            ("timeout", InjectedTimeout),
            ("fatal", InjectedFault),
        ):
            plan = FaultPlan(
                seed=3, specs=(FaultSpec(point="p", kind=kind),)
            )
            with pytest.raises(exc_class) as info:
                plan.injector().fault_point("p")
            assert info.value.point == "p"
            assert info.value.hit == 1

    def test_io_and_timeout_are_retryable_shapes(self):
        assert issubclass(InjectedIOError, OSError)
        assert issubclass(InjectedTimeout, TimeoutError)
        assert not issubclass(InjectedFault, (OSError, TimeoutError))

    def test_delay_faults_use_injected_sleep(self):
        slept = []
        plan = FaultPlan(
            seed=3,
            specs=(FaultSpec(point="p", kind="delay", delay=0.25),),
        )
        injector = plan.injector(sleep=slept.append)
        injector.fault_point("p")  # must not raise
        assert slept == [0.25]

    def test_unarmed_point_never_fires(self):
        injector = default_chaos_plan(chaos_seed()).injector()
        for _ in range(50):
            injector.fault_point("point.nobody.armed")


class TestCorruption:
    def _plan(self):
        return FaultPlan(
            seed=9,
            specs=(FaultSpec(point="bytes", kind="corrupt", times=1),),
        )

    def test_flips_exactly_one_byte(self):
        data = bytes(range(64))
        corrupted = self._plan().injector().corrupt("bytes", data)
        assert corrupted != data
        assert len(corrupted) == len(data)
        diffs = [
            i for i, (a, b) in enumerate(zip(data, corrupted)) if a != b
        ]
        assert len(diffs) == 1
        assert corrupted[diffs[0]] == data[diffs[0]] ^ 0xFF

    def test_corruption_is_deterministic(self):
        data = b"x" * 128
        assert self._plan().injector().corrupt("bytes", data) == (
            self._plan().injector().corrupt("bytes", data)
        )

    def test_corrupt_spec_ignores_fault_point_hits(self):
        injector = self._plan().injector()
        for _ in range(5):
            injector.fault_point("bytes")  # never raises
        # The schedule did not burn its one firing on those hits.
        assert injector.corrupt("bytes", b"payload") != b"payload"

    def test_error_spec_ignores_corrupt_hits(self):
        plan = FaultPlan(
            seed=9, specs=(FaultSpec(point="p", kind="io", times=1),)
        )
        injector = plan.injector()
        assert injector.corrupt("p", b"payload") == b"payload"
        with pytest.raises(InjectedIOError):
            injector.fault_point("p")

    def test_counts_reports_hits_and_firings(self):
        injector = self._plan().injector()
        injector.corrupt("bytes", b"data")
        injector.corrupt("bytes", b"data")
        assert injector.counts() == {
            "bytes": {"hits": 2, "fired": 1}
        }


class TestAmbientSlot:
    def test_default_is_null_injector(self):
        assert get_injector() is NULL_INJECTOR
        fault_point("anything")  # no-op, never raises
        assert NULL_INJECTOR.corrupt("anything", b"d") == b"d"

    def test_injecting_swaps_and_restores(self):
        plan = FaultPlan(seed=1, specs=(FaultSpec(point="p"),))
        injector = plan.injector()
        with injecting(injector) as active:
            assert active is injector
            assert get_injector() is injector
            with pytest.raises(InjectedIOError):
                fault_point("p")
        assert get_injector() is NULL_INJECTOR

    def test_restores_even_when_fault_escapes(self):
        plan = FaultPlan(seed=1, specs=(FaultSpec(point="p"),))
        with pytest.raises(InjectedIOError):
            with injecting(plan.injector()):
                fault_point("p")
        assert get_injector() is NULL_INJECTOR

    def test_nested_injecting_restores_outer(self):
        inner = FaultPlan(seed=1).injector()
        outer = FaultPlan(seed=2).injector()
        with injecting(outer):
            with injecting(inner):
                assert get_injector() is inner
            assert get_injector() is outer

    def test_injector_type_satisfies_null_protocol(self):
        # The two injectors expose the same surface, so production
        # call sites never branch on which one is active.
        for name in ("fault_point", "corrupt"):
            assert callable(getattr(NULL_INJECTOR, name))
            assert callable(getattr(FaultInjector(FaultPlan(seed=0)), name))
