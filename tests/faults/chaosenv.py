"""Shared chaos-suite environment: the seed the CI matrix varies.

The CI ``chaos`` job runs this whole suite once per seed in its
matrix, exported as ``BIVOC_CHAOS_SEED``; locally the suite runs at
the default seed, and any CI failure reproduces with

    BIVOC_CHAOS_SEED=<seed> python -m pytest tests/faults
    bivoc chaos --seed <seed> --plan-only   # the schedule it ran
"""

import os

#: The seed used when the environment does not choose one.
DEFAULT_CHAOS_SEED = 11


def chaos_seed():
    """The fault-plan seed this suite runs under."""
    return int(os.environ.get("BIVOC_CHAOS_SEED", DEFAULT_CHAOS_SEED))
