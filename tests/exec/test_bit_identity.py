"""Every backend is ``==`` to serial: analytics, pipeline, stream, serve.

The acceptance bar of the execution-backend layer, on both synthetic
corpora and shard counts 1, 2, 4 and 7 (7 deliberately divides
neither corpus evenly): for every backend kind, the mining analytics,
the full pipeline, a crash/resumed stream and served query results
are *bit-identical* (``==``, never approximate) to the serial run.
The randomized sweep over the same invariants lives in ``tests/prop``;
these are the pinned, named configurations.
"""

import pytest

from repro.annotation.dictionary import DictionaryEntry, DomainDictionary
from repro.annotation.domains import CHURN_DRIVER_SURFACES
from repro.annotation.matcher import AnnotationEngine
from repro.core import BIVoCConfig
from repro.core.pipeline import BIVoCSystem
from repro.exec import BACKEND_KINDS, make_backend
from repro.mining.assoc2d import associate
from repro.mining.index import ConceptIndex
from repro.mining.olap import concept_cube
from repro.mining.relfreq import relative_frequency
from repro.mining.trends import emerging_concepts, trend_series
from repro.prop import PropCase
from repro.prop.harness import run_stream_reference, run_stream_resumed
from repro.serve import QueryEngine
from repro.serve.wire import result_to_wire
from repro.stream import EpochStore
from repro.stream.checkpoint import index_to_state
from repro.synth.carrental import CarRentalConfig, generate_car_rental
from repro.synth.telecom import TelecomConfig, generate_telecom

from tests.mining.test_algebra_equivalence import reshard
from tests.serve.corpus import make_consumer, make_pairs

SHARD_COUNTS = [1, 2, 4, 7]
WORKERS = 2


@pytest.fixture(scope="module")
def car_corpus():
    """One small car-rental corpus shared by every backend run."""
    return generate_car_rental(
        CarRentalConfig(
            n_agents=5,
            n_days=3,
            calls_per_agent_per_day=3,
            n_customers=50,
            seed=13,
        )
    )


@pytest.fixture(scope="module")
def car_index(car_corpus):
    """Concept index from the serial full-pipeline run."""
    system = BIVoCSystem(
        BIVoCConfig(use_asr=False, link_mode="content", workers=0)
    )
    return system.process_call_center(car_corpus).index


@pytest.fixture(scope="module")
def telecom_messages():
    """A bounded slice of the telecom corpus (pipeline-cheap)."""
    corpus = generate_telecom(
        TelecomConfig(scale=0.01, n_customers=150, seed=13)
    )
    return corpus.messages[:400]


@pytest.fixture(scope="module")
def telecom_index(telecom_messages):
    """Churn-driver index built directly from the message slice."""
    dictionary = DomainDictionary()
    for driver, surfaces in CHURN_DRIVER_SURFACES.items():
        for surface in surfaces:
            dictionary.add(
                DictionaryEntry(surface, driver, "churn driver")
            )
    engine = AnnotationEngine(dictionary=dictionary)
    index = ConceptIndex()
    for message in telecom_messages:
        index.add(
            message.message_id,
            annotated=engine.annotate(message.clean_text),
            fields={"channel": message.channel},
            timestamp=message.month,
        )
    return index


@pytest.fixture(
    scope="module", params=["carrental", "telecom"]
)
def corpus_pair(request, car_index, telecom_index):
    """(single index, analytics spec) per corpus."""
    if request.param == "carrental":
        return car_index, {
            "focus": [("field", "call_type", "unbooked")],
            "candidates": ("concept", "place"),
            "rows": ("concept", "place"),
            "cols": ("concept", "vehicle type"),
            "trend_dim": ("concept", "vehicle type"),
            "cube_dims": [
                ("concept", "place"), ("field", "call_type"),
            ],
        }
    return telecom_index, {
        "focus": [("field", "channel", "email")],
        "candidates": ("concept", "churn driver"),
        "rows": ("concept", "churn driver"),
        "cols": ("field", "channel"),
        "trend_dim": ("concept", "churn driver"),
        "cube_dims": [
            ("concept", "churn driver"), ("field", "channel"),
        ],
    }


def _analytics(index, spec, backend=None):
    """Every mining analytic as comparable values."""
    table = associate(
        index, spec["rows"], spec["cols"], backend=backend
    )
    cube = concept_cube(index, spec["cube_dims"], backend=backend)
    return {
        "relfreq": relative_frequency(
            index, spec["focus"], spec["candidates"], backend=backend
        ),
        "assoc_cells": table.cells(),
        "assoc_shares": table.row_share_matrix(),
        "trends": [
            trend_series(index, key, backend=backend)
            for key in index.keys_of_dimension(spec["trend_dim"])
        ],
        "emerging": emerging_concepts(
            index, spec["trend_dim"], min_total=1, backend=backend
        ),
        "cube_cells": cube.cells(include_empty_coordinates=True),
    }


class TestAnalyticsBitIdentity:
    """All analytics x shards {1,2,4,7} x backends, both corpora."""

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("kind", BACKEND_KINDS)
    def test_backend_equals_serial(self, corpus_pair, shards, kind):
        single, spec = corpus_pair
        expected = _analytics(single, spec)
        sharded = reshard(single, shards)
        with make_backend(kind, workers=WORKERS) as backend:
            actual = _analytics(sharded, spec, backend=backend)
        assert actual == expected


class TestPipelineBitIdentity:
    """The full call-center pipeline per backend equals serial."""

    @pytest.mark.parametrize("kind", BACKEND_KINDS)
    def test_carrental_pipeline(self, car_corpus, car_index, kind):
        system = BIVoCSystem(
            BIVoCConfig(
                use_asr=False, link_mode="content",
                workers=WORKERS, backend=kind,
            )
        )
        result = system.process_call_center(car_corpus)
        assert index_to_state(result.index) == index_to_state(car_index)

    @pytest.mark.parametrize("kind", BACKEND_KINDS)
    @pytest.mark.parametrize("shards", [1, 4])
    def test_telecom_stage_graph(self, telecom_messages, kind, shards):
        from repro.cleaning.stage import CleaningStage
        from repro.core.usecases.churn import (
            StreamAnnotateStage,
            churn_driver_engine,
        )
        from repro.engine import Document, PipelineRunner
        from repro.mining.stage import ConceptIndexStage

        def build_and_run(backend=None, workers=0, shard_count=0):
            stages = [
                CleaningStage(),
                StreamAnnotateStage(churn_driver_engine()),
                ConceptIndexStage(
                    on_duplicate="replace", shards=shard_count
                ),
            ]
            documents = [
                Document(
                    doc_id=message.message_id,
                    channel=message.channel,
                    text=message.raw_text,
                    artifacts={
                        "index_fields": {"channel": message.channel},
                        "timestamp": message.month,
                    },
                )
                for message in telecom_messages
            ]
            with PipelineRunner(
                stages, batch_size=32, workers=workers, backend=backend
            ) as runner:
                runner.run(documents)
            return index_to_state(stages[-1].index)

        expected = build_and_run(shard_count=shards)
        actual = build_and_run(
            backend=kind, workers=WORKERS, shard_count=shards
        )
        assert actual == expected


class TestStreamBitIdentity:
    """Crash/resume under each backend converges to the serial run."""

    @pytest.mark.parametrize("kind", BACKEND_KINDS)
    @pytest.mark.parametrize("shards", [1, 4, 7])
    def test_crash_resume_equals_uninterrupted(
        self, tmp_path, kind, shards
    ):
        case = PropCase(
            seed=99, n_docs=60, channels=("call", "email"),
            shards=shards, batch_size=8, workers=WORKERS,
            backend=kind, batch_docs=7, checkpoint_interval=2,
            crash_after=2,
        )
        expected = run_stream_reference(case)
        resumed = run_stream_resumed(case, str(tmp_path))
        assert resumed == expected


SERVE_QUERIES = [
    {"kind": "assoc2d", "rows": ["field", "city"],
     "cols": ["field", "car"]},
    {"kind": "relfreq", "focus": [["field", "city", "boston"]],
     "candidates": ["field", "car"]},
    {"kind": "trends", "key": ["field", "car", "suv"]},
    {"kind": "cube",
     "dimensions": [["field", "city"], ["field", "channel"]]},
]


class TestServedQueryBitIdentity:
    """Served answers per backend equal the serial engine's."""

    @pytest.fixture(scope="class", params=SHARD_COUNTS)
    def epochs(self, request):
        store = EpochStore(history=None)
        consumer = make_consumer(
            make_pairs(), shards=request.param, epochs=store
        )
        consumer.run()
        return store

    @pytest.mark.parametrize("kind", BACKEND_KINDS)
    def test_backend_engine_equals_serial_engine(self, epochs, kind):
        serial = QueryEngine(epochs)
        with QueryEngine(
            epochs, backend=kind, workers=WORKERS
        ) as engine:
            for payload in SERVE_QUERIES:
                expected = serial.query(payload)
                actual = engine.query(payload)
                assert actual.epoch == expected.epoch
                assert result_to_wire(
                    actual.kind, actual.value
                ) == result_to_wire(expected.kind, expected.value)
