"""ExecBackend protocol: ordering, lifecycle, factories, metrics."""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.exec import (
    BACKEND_KINDS,
    PoolBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    make_backend,
    resolve_backend,
)
from repro.obs import MetricsRegistry, Tracer, activated


def _square(x):
    return x * x


def _add(x, y):
    return x + y


class TestMapContract:
    """Order preservation and column validation, every backend."""

    @pytest.mark.parametrize("backend", [
        SerialBackend(), ThreadBackend(4), ProcessBackend(2),
    ], ids=["serial", "thread", "process"])
    def test_order_preserved(self, backend):
        with backend:
            assert backend.map(_square, range(20)) == [
                i * i for i in range(20)
            ]

    @pytest.mark.parametrize("backend", [
        SerialBackend(), ThreadBackend(3), ProcessBackend(2),
    ], ids=["serial", "thread", "process"])
    def test_multi_column_zip(self, backend):
        with backend:
            assert backend.map(_add, [1, 2, 3], [10, 20, 30]) == [
                11, 22, 33
            ]

    def test_unequal_columns_raise(self):
        with pytest.raises(ValueError, match="equal lengths"):
            SerialBackend().map(_add, [1, 2], [1, 2, 3])

    def test_empty_columns_yield_empty(self):
        with ThreadBackend(4) as backend:
            assert backend.map(_square, []) == []

    def test_injected_pool_backend_maps_and_never_closes(self):
        with ThreadPoolExecutor(max_workers=2) as pool:
            backend = PoolBackend(pool)
            assert backend.map(_square, range(8)) == [
                i * i for i in range(8)
            ]
            backend.close()
            # The wrapped executor still works: close() was a no-op.
            assert pool.submit(_square, 6).result() == 36


class TestIntrospection:
    """Workers / fan-out / pickling flags drive the callers' choices."""

    def test_effective_workers(self):
        assert SerialBackend().effective_workers() == 1
        assert ThreadBackend(5).effective_workers() == 5
        assert ProcessBackend(3).effective_workers() == 3
        with ThreadPoolExecutor(max_workers=4) as pool:
            assert PoolBackend(pool).effective_workers() == 4

    def test_can_fan_out(self):
        assert not SerialBackend().can_fan_out()
        assert not ThreadBackend(1).can_fan_out()
        assert ThreadBackend(2).can_fan_out()
        assert ProcessBackend(2).can_fan_out()

    def test_requires_pickling_only_for_process(self):
        assert not SerialBackend().requires_pickling
        assert not ThreadBackend(2).requires_pickling
        assert ProcessBackend(2).requires_pickling


class TestFactory:
    """make_backend: names to instances, knob validation."""

    def test_kind_table(self):
        assert isinstance(make_backend("serial"), SerialBackend)
        assert isinstance(make_backend("thread", workers=3), ThreadBackend)
        assert isinstance(
            make_backend("process", workers=2), ProcessBackend
        )

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("gpu")

    def test_process_knobs_rejected_elsewhere(self):
        with pytest.raises(ValueError, match="process-backend knobs"):
            make_backend("thread", workers=2, chunk_size=8)

    def test_workers_floor_at_one(self):
        assert make_backend("thread", workers=0).effective_workers() == 1

    def test_invalid_worker_counts_raise(self):
        with pytest.raises(ValueError, match="workers"):
            ThreadBackend(0)
        with pytest.raises(ValueError, match="workers"):
            ProcessBackend(0)
        with pytest.raises(ValueError, match="chunk_size"):
            ProcessBackend(2, chunk_size=0)


class TestResolver:
    """resolve_backend: one rule for runner, algebra and engine."""

    def test_all_serial_resolves_to_none(self):
        assert resolve_backend() == (None, False)
        assert resolve_backend(workers=1) == (None, False)

    def test_bare_workers_builds_owned_thread_backend(self):
        backend, owned = resolve_backend(workers=3)
        assert isinstance(backend, ThreadBackend)
        assert backend.effective_workers() == 3
        assert owned

    def test_pool_wraps_into_pool_backend(self):
        with ThreadPoolExecutor(max_workers=2) as pool:
            backend, owned = resolve_backend(pool=pool)
            assert isinstance(backend, PoolBackend)
            assert backend.pool is pool
            assert owned

    def test_kind_name_builds_owned_backend(self):
        backend, owned = resolve_backend(backend="process", workers=2)
        assert isinstance(backend, ProcessBackend)
        assert owned
        backend.close()

    def test_instance_passes_through_unowned(self):
        instance = ThreadBackend(2)
        try:
            backend, owned = resolve_backend(backend=instance)
            assert backend is instance
            assert not owned
        finally:
            instance.close()

    def test_ambiguous_pairs_raise(self):
        with ThreadPoolExecutor(max_workers=2) as pool:
            with pytest.raises(ValueError, match="either pool or workers"):
                resolve_backend(pool=pool, workers=2)
            with pytest.raises(ValueError, match="either pool or backend"):
                resolve_backend(pool=pool, backend="thread")
        instance = ThreadBackend(2)
        try:
            with pytest.raises(ValueError, match="backend instance"):
                resolve_backend(backend=instance, workers=3)
        finally:
            instance.close()

    def test_garbage_backend_raises(self):
        with pytest.raises(ValueError, match="ExecBackend"):
            resolve_backend(backend=42)


class TestObservability:
    """Fan-outs record kind/worker/chunk counts — and only record."""

    def test_map_records_kind_tasks_and_workers(self):
        metrics = MetricsRegistry()
        with activated(Tracer(), metrics):
            with ThreadBackend(3) as backend:
                backend.map(_square, range(7))
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["exec.map.thread"] == 1
        assert snapshot["counters"]["exec.tasks"] == 7
        assert snapshot["gauges"]["exec.workers"] == 3

    def test_process_map_records_chunks(self):
        metrics = MetricsRegistry()
        with activated(Tracer(), metrics):
            with ProcessBackend(2, chunk_size=3) as backend:
                backend.map(_square, range(12))
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["exec.map.process"] == 1
        assert snapshot["gauges"]["exec.chunks"] == 4

    def test_metered_results_equal_bare_results(self):
        with ThreadBackend(3) as backend:
            bare = backend.map(_square, range(9))
        metrics = MetricsRegistry()
        with activated(Tracer(), metrics):
            with ThreadBackend(3) as backend:
                metered = backend.map(_square, range(9))
        assert metered == bare

    def test_backend_kinds_is_the_cli_contract(self):
        assert BACKEND_KINDS == ("serial", "thread", "process")
