"""Execution-backend tests: protocol, factories, process edge paths."""
