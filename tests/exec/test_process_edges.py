"""ProcessBackend edge paths: degradation, pickling, teardown, faults."""

import pickle

import pytest

from concurrent.futures.process import BrokenProcessPool

import repro.exec.procpool as procpool_module
from repro.engine import Document, MapStage, PipelineRunner
from repro.exec import BackendError, ProcessBackend, ThreadBackend
from repro.faults import (
    FaultPlan,
    FaultSpec,
    InjectedFault,
    fault_point,
    injecting,
)


def _double(x):
    return x * 2


def _fault_then_double(x):
    """A worker task passing through the ``exec:worker`` fault point."""
    fault_point("exec:worker")
    return x * 2


def _exec_worker_plan():
    """A plan that kills the first ``exec:worker`` hit, fatally."""
    return FaultPlan(
        seed=3,
        specs=(FaultSpec(point="exec:worker", kind="fatal", times=1),),
    )


class _ExplodingExecutor:
    """Stands in for ProcessPoolExecutor to prove no pool is built."""

    def __init__(self, *args, **kwargs):
        raise AssertionError("a process pool was spawned")


class _FakePool:
    """A pool double whose ``map`` raises a scripted exception."""

    def __init__(self, exc):
        self.exc = exc
        self.shutdowns = 0

    def map(self, fn, *columns, chunksize=1):
        raise self.exc

    def shutdown(self, wait=True, cancel_futures=False):
        self.shutdowns += 1


class TestInlineDegradation:
    """workers=1 (or one task) never spawns worker processes."""

    def test_single_worker_runs_inline(self, monkeypatch):
        monkeypatch.setattr(
            procpool_module, "ProcessPoolExecutor", _ExplodingExecutor
        )
        with ProcessBackend(1) as backend:
            assert backend.map(_double, range(6)) == [
                0, 2, 4, 6, 8, 10
            ]

    def test_single_task_runs_inline(self, monkeypatch):
        monkeypatch.setattr(
            procpool_module, "ProcessPoolExecutor", _ExplodingExecutor
        )
        with ProcessBackend(4) as backend:
            assert backend.map(_double, [21]) == [42]

    def test_inline_path_even_runs_unpicklable_payloads(
        self, monkeypatch
    ):
        # Inline execution never crosses a process boundary, so a
        # closure is fine there — only real fan-out needs pickling.
        monkeypatch.setattr(
            procpool_module, "ProcessPoolExecutor", _ExplodingExecutor
        )
        with ProcessBackend(1) as backend:
            assert backend.map(lambda x: x + 1, range(3)) == [1, 2, 3]


class TestPicklingPreflight:
    """Unpicklable payloads fail fast, clearly, and name the unit."""

    def test_unpicklable_payload_names_the_stage(self):
        with ProcessBackend(2) as backend:
            with pytest.raises(BackendError, match="stage:annotate"):
                backend.map(
                    lambda x: x, range(4), label="stage:annotate"
                )
            # The preflight fired before any submission: no pool yet.
            assert backend._pool is None

    def test_unlabelled_payload_still_identified(self):
        with ProcessBackend(2) as backend:
            with pytest.raises(BackendError, match="not picklable"):
                backend.map(lambda x: x, range(4))

    def test_runner_surfaces_the_stage_name(self):
        # An unpicklable *stage* (holds a lambda) through the real
        # runner: the error must name the stage, not a pickle frame.
        class Unpicklable(MapStage):
            name = "poison"

            def __init__(self):
                self.fn = lambda value: value

            def process_document(self, document):
                document.put("value", self.fn(document.doc_id))

        with ProcessBackend(2) as backend:
            with PipelineRunner(
                [Unpicklable()], batch_size=2, backend=backend
            ) as runner:
                with pytest.raises(BackendError, match="stage:poison"):
                    runner.run([Document(doc_id=i) for i in range(8)])


class TestTeardown:
    """The pool dies with the backend — however the backend dies."""

    def test_context_exit_shuts_the_pool_down(self):
        with ProcessBackend(2) as backend:
            assert backend.map(_double, range(8)) == [
                i * 2 for i in range(8)
            ]
            assert backend._pool is not None
        assert backend._pool is None

    def test_close_is_idempotent(self):
        backend = ProcessBackend(2)
        backend.map(_double, range(8))
        backend.close()
        backend.close()
        assert backend._pool is None

    def test_keyboard_interrupt_shuts_down_and_reraises(self):
        backend = ProcessBackend(2)
        fake = _FakePool(KeyboardInterrupt())
        backend._pool = fake
        with pytest.raises(KeyboardInterrupt):
            backend.map(_double, range(8))
        assert fake.shutdowns == 1
        assert backend._pool is None

    def test_broken_pool_becomes_backend_error(self):
        backend = ProcessBackend(2)
        fake = _FakePool(BrokenProcessPool("worker died"))
        backend._pool = fake
        with pytest.raises(BackendError, match="process pool died"):
            backend.map(_double, range(8), label="analytic:assoc2d")
        assert fake.shutdowns == 1
        assert backend._pool is None

    def test_map_after_close_respawns(self):
        with ProcessBackend(2) as backend:
            backend.map(_double, range(8))
            backend.close()
            # A fresh map after close lazily respawns the pool.
            assert backend.map(_double, range(8)) == [
                i * 2 for i in range(8)
            ]


class TestChunking:
    """About four chunks per worker, overridable, never zero."""

    def test_default_chunking(self):
        assert ProcessBackend(4)._chunk_for(32) == 2
        assert ProcessBackend(2)._chunk_for(100) == 13
        assert ProcessBackend(8)._chunk_for(3) == 1

    def test_override_wins(self):
        assert ProcessBackend(4, chunk_size=7)._chunk_for(1000) == 7


class TestWorkerFaults:
    """An injected crash in one worker surfaces as the original error."""

    def test_thread_worker_fault_surfaces(self):
        with injecting(_exec_worker_plan().injector()):
            with ThreadBackend(2) as backend:
                with pytest.raises(InjectedFault) as err:
                    backend.map(_fault_then_double, range(8))
        assert err.value.point == "exec:worker"

    def test_process_worker_fault_surfaces_with_remote_traceback(self):
        # Fork start method: the armed injector (a module global) is
        # inherited by workers spawned inside the injecting block.
        with injecting(_exec_worker_plan().injector()):
            with ProcessBackend(2, mp_context="fork") as backend:
                with pytest.raises(InjectedFault) as err:
                    backend.map(_fault_then_double, range(8))
        assert err.value.point == "exec:worker"
        # The stdlib chains the worker-side traceback as __cause__, so
        # the failure reads exactly like the serial one would.
        assert err.value.__cause__ is not None
        assert "exec:worker" in str(err.value)

    def test_injected_fault_pickles_round_trip(self):
        fault = InjectedFault("exec:worker", 5)
        clone = pickle.loads(pickle.dumps(fault))
        assert isinstance(clone, InjectedFault)
        assert clone.point == "exec:worker"
        assert clone.hit == 5
        assert str(clone) == str(fault)
