"""Integration: agent notes flow end to end through cleaning + mining."""

import pytest

from repro.annotation.domains import build_car_rental_engine
from repro.cleaning.pipeline import CleaningPipeline
from repro.mining.assoc2d import associate
from repro.mining.index import ConceptIndex
from repro.synth.carrental import CarRentalConfig, generate_car_rental
from repro.synth.notes import AgentNoteGenerator


@pytest.fixture(scope="module")
def notes_index():
    corpus = generate_car_rental(
        CarRentalConfig(
            n_agents=20,
            n_days=4,
            calls_per_agent_per_day=8,
            n_customers=300,
            seed=33,
        )
    )
    notes = AgentNoteGenerator(seed=33).notes_for_corpus(corpus)
    pipeline = CleaningPipeline(spell_correct=True)
    engine = build_car_rental_engine()
    calls = corpus.database.table("calls")
    index = ConceptIndex()
    kept = 0
    for note in notes:
        cleaned = pipeline.clean(note.text, channel="notes")
        if cleaned.discarded:
            continue
        record = calls.get(note.call_id)
        index.add(
            note.call_id,
            annotated=engine.annotate(cleaned.text),
            fields={"call_type": record["call_type"]},
        )
        kept += 1
    return corpus, index, kept, len(notes)


class TestNotesEndToEnd:
    def test_nearly_all_notes_survive_cleaning(self, notes_index):
        _, _, kept, total = notes_index
        assert kept / total > 0.95

    def test_vehicle_concepts_extracted_from_notes(self, notes_index):
        corpus, index, _, _ = notes_index
        from repro.mining.index import concept_key

        total_vehicle_mentions = sum(
            index.count(concept_key("vehicle type", vehicle))
            for vehicle in (
                "suv", "mid-size", "full-size", "luxury", "compact",
                "convertible",
            )
        )
        # Notes for sales calls name the vehicle.
        assert total_vehicle_mentions > 0.5 * len(index)

    def test_planted_association_recovered_from_notes_alone(
        self, notes_index
    ):
        _, index, _, _ = notes_index
        table = associate(
            index, ("concept", "place"), ("concept", "vehicle type")
        )
        top = {
            (c.row_value, c.col_value)
            for c in table.strongest(6, min_count=4)
        }
        planted = {
            ("seattle", "suv"),
            ("new york", "luxury"),
            ("boston", "full-size"),
            ("los angeles", "convertible"),
            ("miami", "convertible"),
            ("denver", "suv"),
        }
        assert top & planted

    def test_outcome_field_joined(self, notes_index):
        _, index, _, _ = notes_index
        from repro.mining.index import field_key

        assert index.count(field_key("call_type", "reservation")) > 0
        assert index.count(field_key("call_type", "unbooked")) > 0
