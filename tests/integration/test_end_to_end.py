"""Integration tests: the full BIVoC flows at small scale.

Each test mirrors one paper experiment end to end (same code path as
the corresponding bench, smaller corpus, looser bands); see
EXPERIMENTS.md for the bench-scale measured-vs-paper numbers.
"""

import pytest

from repro.asr.calibrate import measure_wer
from repro.asr.system import ASRSystem
from repro.asr.vocabulary import NAME_CLASS
from repro.core import BIVoCConfig, run_insight_analysis
from repro.core.usecases.churn import run_churn_study
from repro.mining.assoc2d import associate
from repro.synth.carrental import CarRentalConfig, generate_car_rental
from repro.synth.telecom import TelecomConfig, generate_telecom


@pytest.fixture(scope="module")
def car_corpus():
    return generate_car_rental(
        CarRentalConfig(
            n_agents=25,
            n_days=4,
            calls_per_agent_per_day=6,
            n_customers=300,
            seed=13,
        )
    )


class TestE1TableI:
    def test_wer_bands(self, car_corpus):
        system = ASRSystem.build_default(
            extra_sentences=[t.text for t in car_corpus.transcripts[:25]]
        )
        breakdown = measure_wer(
            system,
            [t.text for t in car_corpus.transcripts[25:65]],
            reset_seed=99,
        )
        assert 0.30 < breakdown.wer() < 0.60
        assert breakdown.wer(NAME_CLASS) > breakdown.wer()


class TestE3E4E5Tables:
    @pytest.fixture(scope="class")
    def study(self, car_corpus):
        return run_insight_analysis(
            car_corpus, BIVoCConfig(use_asr=False, link_mode="content")
        )

    def test_table3_direction_and_levels(self, study):
        shares = study.intent_shares()
        assert shares["strong"]["reservation"] > 0.5
        assert shares["weak"]["reservation"] < 0.45

    def test_table4_direction(self, study):
        shares = study.utterance_shares()
        for dimension in ("value_selling", "discount"):
            assert (
                shares[dimension]["True"]["reservation"]
                > shares[dimension]["False"]["reservation"]
            )

    def test_table2_association_surfaces_planted_pairs(self, study):
        table = study.location_vehicle_table
        top = table.strongest(8, min_count=2)
        assert top, "association table must not be empty"

    def test_index_consistency_with_warehouse(self, study, car_corpus):
        """Every linked call's indexed outcome matches the warehouse."""
        calls_table = car_corpus.database.table("calls")
        checked = 0
        for call in study.analysis.calls:
            if call.linked_record is None:
                continue
            # Content linking resolves to the correct (agent, day)
            # block; verify the outcome actually exists there.
            record = call.linked_record
            assert record["call_type"] in (
                "reservation",
                "unbooked",
                "service",
            )
            assert calls_table.get(record.entity_id) == record
            checked += 1
        assert checked > 0.9 * len(study.analysis.calls)


class TestE7Churn:
    def test_study_at_small_scale(self):
        corpus = generate_telecom(
            TelecomConfig(scale=0.02, n_customers=1200, seed=31)
        )
        result = run_churn_study(corpus, channel="email")
        assert result.unlinked_fraction == pytest.approx(0.18, abs=0.08)
        assert 0.0 <= result.detection_rate <= 1.0
        assert result.message_report.false_positive_rate < 0.3


class TestCrossSubsystemInvariants:
    def test_asr_pipeline_matches_direct_asr(self, car_corpus):
        """The pipeline's per-turn ASR uses the same machinery as the
        standalone system; spot-check a transcription is reproducible."""
        config = BIVoCConfig(use_asr=True, asr_seed=4242)
        from repro.core.pipeline import BIVoCSystem

        system = BIVoCSystem(config)
        first = system.process_call_center(car_corpus)
        second = BIVoCSystem(config).process_call_center(car_corpus)
        assert [c.full_text for c in first.calls[:10]] == [
            c.full_text for c in second.calls[:10]
        ]

    def test_association_counts_match_index(self, car_corpus):
        study = run_insight_analysis(
            car_corpus, BIVoCConfig(use_asr=False)
        )
        index = study.analysis.index
        table = associate(
            index, ("field", "detected_intent"), ("field", "call_type")
        )
        for cell in table.cells():
            docs = table.documents(cell.row_value, cell.col_value)
            assert len(docs) == cell.count


class TestFig4Scenario:
    """The paper's Fig 4 view: 'association [of] the mentions of
    competitor credit cards in the email with the category assigned to
    the email' — here, competitor mentions x churn status."""

    def test_competitor_mentions_associate_with_churn(self):
        from repro.annotation.domains import build_telecom_engine
        from repro.cleaning.pipeline import CleaningPipeline
        from repro.mining.assoc2d import associate
        from repro.mining.index import ConceptIndex
        from repro.mining.reports import render_drilldown
        from repro.synth.telecom import TelecomConfig, generate_telecom

        corpus = generate_telecom(
            TelecomConfig(scale=0.02, n_customers=1200, seed=51)
        )
        engine = build_telecom_engine()
        pipeline = CleaningPipeline(spell_correct=False)
        index = ConceptIndex(keep_documents=True)
        # Both channels: churner email volume alone is tiny (3% of a
        # small corpus) and one driver is only a fifth of the planted
        # driver language.
        channelled = [("email", m) for m in corpus.emails] + [
            ("sms", m) for m in corpus.sms
        ]
        for channel, message in channelled:
            if message.sender_entity_id is None:
                continue
            cleaned = pipeline.clean(message.raw_text, channel=channel)
            if cleaned.discarded:
                continue
            index.add(
                message.message_id,
                annotated=engine.annotate(cleaned.text),
                fields={"churned": message.from_churner},
                text=cleaned.text,
            )
        table = associate(
            index,
            ("concept", "competitor_tariff"),
            ("field", "churned"),
        )
        cell = table.cell("competitor_tariff", "True")
        # Competitor mentions are over-represented among churner email.
        churner_rate = cell.count / cell.col_total
        overall_rate = cell.row_total / cell.grand_total
        assert churner_rate > overall_rate

        # Fig 4's drill-down to individual documents works here too.
        report = render_drilldown(
            table, "competitor_tariff", "True", index, limit=3
        )
        assert "documents" in report
