"""Property-based tests over cross-module invariants."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asr.lm import NGramLM
from repro.linking.fagin import fagin_merge, full_scan_merge, threshold_merge
from repro.mining.assoc2d import associate
from repro.mining.index import ConceptIndex
from repro.mining.trends import emerging_concepts, trend_series

# --------------------------------------------------------------------------
# ConceptIndex + association analysis vs a brute-force oracle.
# --------------------------------------------------------------------------

doc_strategy = st.lists(
    st.tuples(
        st.sampled_from(["r0", "r1", "r2"]),
        st.sampled_from(["c0", "c1", "c2"]),
        st.integers(0, 3),  # timestamp bucket
    ),
    min_size=1,
    max_size=40,
)


@given(doc_strategy)
@settings(max_examples=40)
def test_association_counts_match_bruteforce(docs):
    index = ConceptIndex()
    for doc_id, (row, col, ts) in enumerate(docs):
        index.add(doc_id, fields={"row": row, "col": col}, timestamp=ts)
    table = associate(index, ("field", "row"), ("field", "col"))
    for cell in table.cells():
        brute = sum(
            1
            for row, col, _ in docs
            if row == cell.row_value and col == cell.col_value
        )
        assert cell.count == brute
        assert cell.row_total == sum(
            1 for row, _, _ in docs if row == cell.row_value
        )
        # Drill-down agrees with the count.
        assert len(table.documents(cell.row_value, cell.col_value)) == (
            cell.count
        )


@given(doc_strategy)
@settings(max_examples=30)
def test_trend_series_conserves_mass(docs):
    index = ConceptIndex()
    for doc_id, (row, col, ts) in enumerate(docs):
        index.add(doc_id, fields={"row": row}, timestamp=ts)
    from repro.mining.index import field_key

    for value in index.values_of_dimension(("field", "row")):
        series = trend_series(index, field_key("row", value))
        assert sum(count for _, count in series) == index.count(
            field_key("row", value)
        )


@given(doc_strategy)
@settings(max_examples=20)
def test_emerging_concepts_sorted_by_slope(docs):
    index = ConceptIndex()
    for doc_id, (row, _, ts) in enumerate(docs):
        index.add(doc_id, fields={"row": row}, timestamp=ts)
    ranked = emerging_concepts(
        index, ("field", "row"), buckets=[0, 1, 2, 3], min_total=1
    )
    slopes = [slope for _, slope, _ in ranked]
    assert slopes == sorted(slopes, reverse=True)


# --------------------------------------------------------------------------
# Ranked-list merges agree with each other on arbitrary inputs.
# --------------------------------------------------------------------------


def _ranked_lists():
    key = st.sampled_from(list("abcdefg"))
    entry = st.tuples(key, st.floats(0.0, 1.0, allow_nan=False))

    def dedupe(entries):
        best = {}
        for k, score in entries:
            best[k] = max(best.get(k, 0.0), score)
        return sorted(best.items(), key=lambda pair: -pair[1])

    one = st.lists(entry, min_size=0, max_size=8).map(dedupe)
    return st.lists(one, min_size=1, max_size=4)


@given(_ranked_lists(), st.integers(1, 3))
@settings(max_examples=60)
def test_merge_top_k_scores_agree(lists, k):
    scan = full_scan_merge(lists, k=k)
    ta = threshold_merge(lists, k=k)
    fa = fagin_merge(lists, k=k)
    scan_scores = [score for _, score in scan.ranked]
    for other in (ta, fa):
        other_scores = [score for _, score in other.ranked]
        assert len(other_scores) == len(scan_scores)
        for a, b in zip(scan_scores, other_scores):
            assert a == pytest.approx(b)


# --------------------------------------------------------------------------
# Language-model distributional sanity on random corpora.
# --------------------------------------------------------------------------

corpus_strategy = st.lists(
    st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=6),
    min_size=1,
    max_size=10,
)


@given(corpus_strategy)
@settings(max_examples=30)
def test_lm_conditional_distribution_sums_below_one(corpus):
    lm = NGramLM().fit(corpus)
    for context in ((), ("a",), ("a", "b")):
        total = sum(
            lm.probability(word, context) for word in lm.vocabulary
        )
        assert total <= 1.0 + 1e-9


@given(corpus_strategy)
@settings(max_examples=30)
def test_lm_sentence_logprob_monotone_in_length(corpus):
    lm = NGramLM().fit(corpus)
    short = ["a"]
    long = ["a", "b", "c"]
    assert lm.sentence_logprob(long) <= lm.sentence_logprob(short)


# --------------------------------------------------------------------------
# Churn classifier probability sanity on random sparse features.
# --------------------------------------------------------------------------

features_strategy = st.lists(
    st.dictionaries(
        st.sampled_from(["w:a", "w:b", "w:c", "c:x"]),
        st.integers(1, 4),
        min_size=1,
        max_size=4,
    ),
    min_size=4,
    max_size=12,
)


@given(features_strategy)
@settings(max_examples=30)
def test_nb_probabilities_valid_on_random_data(raw_features):
    from repro.churn.classifier import MultinomialNaiveBayes

    features = [Counter(f) for f in raw_features]
    labels = [i % 2 == 0 for i in range(len(features))]
    model = MultinomialNaiveBayes().fit(features, labels)
    for probability in model.predict_proba(features):
        assert 0.0 <= probability <= 1.0
