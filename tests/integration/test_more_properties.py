"""Second round of property-based tests: cleaning, annotation, store."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.annotation.domains import build_car_rental_engine
from repro.cleaning.sms import SmsNormalizer
from repro.cleaning.spelling import SpellCorrector
from repro.store.database import Database
from repro.store.query import Query, count_by
from repro.store.schema import AttributeType, Schema

words_text = st.lists(
    st.sampled_from(
        "please confirm the rate for a car in boston is good thanks "
        "pls u r gr8 2 know suv".split()
    ),
    min_size=0,
    max_size=12,
).map(" ".join)


class TestNormalizerProperties:
    @given(words_text)
    @settings(max_examples=60)
    def test_idempotent(self, text):
        normalizer = SmsNormalizer()
        once = normalizer.normalize(text)
        assert normalizer.normalize(once) == once

    @given(words_text)
    @settings(max_examples=60)
    def test_token_count_preserved(self, text):
        # Lingo expansion is word-for-word except multiword expansions
        # ("asap"), which the sampled vocabulary avoids.
        normalizer = SmsNormalizer()
        assert len(normalizer.normalize(text).split()) == len(text.split())


class TestSpellingProperties:
    @given(words_text)
    @settings(max_examples=40)
    def test_known_words_never_corrupted(self, text):
        corrector = SpellCorrector()
        for token in text.split():
            if corrector.known(token):
                assert corrector.correct_word(token) == token

    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=4,
                   max_size=10))
    @settings(max_examples=60)
    def test_corrections_are_known_words(self, word):
        corrector = SpellCorrector()
        corrected = corrector.correct_word(word)
        if corrected != word:
            assert corrector.known(corrected)


class TestAnnotationProperties:
    @given(words_text)
    @settings(max_examples=40)
    def test_concept_spans_inside_document(self, text):
        engine = build_car_rental_engine()
        document = engine.annotate(text)
        for concept in document.concepts:
            assert 0 <= concept.start < concept.end <= len(
                document.tokens
            )
            surface_tokens = document.tokens[concept.start : concept.end]
            assert concept.surface == " ".join(surface_tokens)

    @given(words_text)
    @settings(max_examples=40)
    def test_annotation_deterministic(self, text):
        engine = build_car_rental_engine()
        a = engine.annotate(text)
        b = engine.annotate(text)
        assert a.concepts == b.concepts


rows_strategy = st.lists(
    st.tuples(
        st.sampled_from(["reservation", "unbooked", "service"]),
        st.integers(0, 4),
    ),
    min_size=0,
    max_size=30,
)


class TestStoreQueryProperties:
    @given(rows_strategy)
    @settings(max_examples=50)
    def test_group_by_partitions(self, rows):
        database = Database()
        table = database.create_table(
            "calls",
            Schema.build(
                ("call_type", AttributeType.CATEGORY),
                ("day", AttributeType.NUMBER),
            ),
        )
        for call_type, day in rows:
            table.insert({"call_type": call_type, "day": day})
        groups = Query(table).group_by("call_type")
        assert sum(len(group) for group in groups.values()) == len(rows)
        counts = count_by(table, "call_type")
        for value, group in groups.items():
            assert counts[value] == len(group)

    @given(rows_strategy)
    @settings(max_examples=50)
    def test_where_filters_are_conjunctive(self, rows):
        database = Database()
        table = database.create_table(
            "calls",
            Schema.build(
                ("call_type", AttributeType.CATEGORY),
                ("day", AttributeType.NUMBER),
            ),
        )
        for call_type, day in rows:
            table.insert({"call_type": call_type, "day": day})
        narrowed = (
            Query(table)
            .where_equals("call_type", "reservation")
            .where(lambda e: e["day"] >= 2)
            .count()
        )
        brute = sum(
            1
            for call_type, day in rows
            if call_type == "reservation" and day >= 2
        )
        assert narrowed == brute
