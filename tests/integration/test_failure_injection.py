"""Failure-injection tests: the system must degrade, not crash.

Each test pushes a subsystem outside its comfort zone — total acoustic
dropout, adversarial text, empty warehouses, degenerate corpora — and
asserts a sane, documented behaviour.
"""

import pytest

from repro.annotation.domains import build_car_rental_engine
from repro.asr.acoustic import AcousticChannel, ChannelConfig
from repro.asr.decoder import Decoder
from repro.asr.lm import NGramLM
from repro.asr.system import ASRSystem
from repro.cleaning.pipeline import CleaningPipeline
from repro.core import BIVoCConfig
from repro.core.pipeline import BIVoCSystem
from repro.linking.single import EntityLinker
from repro.mining.index import ConceptIndex
from repro.store.database import Database
from repro.store.schema import AttributeType, Schema
from repro.synth.carrental import CarRentalConfig, generate_car_rental


@pytest.fixture(scope="module")
def small_corpus():
    return generate_car_rental(
        CarRentalConfig(
            n_agents=6,
            n_days=2,
            calls_per_agent_per_day=3,
            n_customers=40,
            seed=2,
        )
    )


class TestTotalAcousticDropout:
    def test_pipeline_survives_full_deletion_channel(self, small_corpus):
        """Every word deleted: transcripts are empty, nothing links,
        no intent is detected — and nothing crashes."""
        system = BIVoCSystem(BIVoCConfig(use_asr=True))
        analysis_system = system
        asr = analysis_system._build_asr(small_corpus)
        asr.channel.config = ChannelConfig(
            deletion_rate=1.0, insertion_rate=0.0,
            name_deletion_multiplier=1.0,
        )
        # Monkey-wire the broken ASR through the unified helper.
        from repro.core.pipeline import transcribe_turns

        customer, agent = transcribe_turns(
            asr, small_corpus.transcripts[0].turns,
            config=analysis_system.config,
        )
        assert all(part == "" for part in customer + agent)

    def test_decoder_on_empty_vocabulary_lm(self):
        lm = NGramLM()  # never fitted: empty vocabulary
        from repro.asr.acoustic import ConfusionNetwork, Slot

        network = ConfusionNetwork(
            slots=[
                Slot([("anything", 0.0)], "anything", "general"),
            ],
            reference_tokens=["anything"],
            reference_classes=["general"],
        )
        assert Decoder(lm).decode(network) == ["anything"]


class TestAdversarialText:
    @pytest.fixture(scope="class")
    def pipeline(self):
        return CleaningPipeline(spell_correct=True)

    @pytest.mark.parametrize(
        "text",
        [
            "",
            "     ",
            "\n\n\n",
            "@@@@ #### $$$$",
            "a" * 500,
            "from: \nsubject: \n\n> > > >",
            "1234567890 " * 40,
            "éèê unicode soup 你好",
        ],
    )
    def test_cleaning_never_crashes(self, pipeline, text):
        for channel in ("email", "sms"):
            result = pipeline.clean(text, channel=channel)
            assert isinstance(result.discarded, bool)

    @pytest.mark.parametrize(
        "text",
        ["", "!!!", "a", "the " * 100, "\x00\x01", "9" * 60],
    )
    def test_annotation_never_crashes(self, text):
        engine = build_car_rental_engine()
        document = engine.annotate(text)
        assert document.concepts == sorted(
            document.concepts, key=lambda c: (c.start, c.end)
        )

    def test_asr_on_out_of_vocabulary_text(self):
        system = ASRSystem.build_default()
        transcription = system.transcribe("xylophone quixotic zygote")
        assert isinstance(transcription.hypothesis_tokens, list)


class TestDegenerateStructures:
    def test_linker_on_empty_table(self):
        database = Database()
        database.create_table(
            "customers",
            Schema.build(("name", AttributeType.NAME, True)),
        )
        database.build_indexes()
        linker = EntityLinker(database, "customers")
        result = linker.link("my name is john smith")
        assert not result.linked

    def test_association_on_single_valued_dimension(self):
        from repro.mining.assoc2d import associate

        index = ConceptIndex()
        for i in range(10):
            index.add(i, fields={"a": "only", "b": f"v{i % 2}"})
        table = associate(index, ("field", "a"), ("field", "b"))
        assert table.row_values == ["only"]
        for cell in table.cells():
            # A constant dimension carries no association signal.
            assert cell.strength <= 1.5

    def test_channel_with_zero_noise_roundtrips(self, small_corpus):
        from repro.asr.vocabulary import build_vocabulary

        vocabulary = build_vocabulary(
            extra_sentences=[t.text for t in small_corpus.transcripts]
        )
        channel = AcousticChannel(
            vocabulary,
            ChannelConfig(
                sigma_general=0.0,
                sigma_name=0.0,
                sigma_number=0.0,
                deletion_rate=0.0,
                insertion_rate=0.0,
                extra_name_candidates=0,
            ),
        )
        text = small_corpus.transcripts[0].text.lower().split()
        network = channel.encode(text)
        best = [slot.candidates[0][0] for slot in network.slots]
        assert best == text

    def test_empty_concept_index_operations(self):
        index = ConceptIndex()
        assert len(index) == 0
        assert index.count(("concept", "x", "y")) == 0
        assert index.values_of_dimension(("field", "z")) == []


class TestTwoPassPipeline:
    def test_two_pass_config_runs_end_to_end(self, small_corpus):
        system = BIVoCSystem(
            BIVoCConfig(use_asr=True, two_pass=True, asr_seed=9)
        )
        analysis = system.process_call_center(small_corpus)
        assert len(analysis.calls) == len(small_corpus.transcripts)
        assert analysis.linked_fraction > 0.8
