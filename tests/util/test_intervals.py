"""Tests for proportion intervals and the Eqn-4 lift lower bound."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.intervals import (
    lift_lower_bound,
    lift_point_estimate,
    proportion_interval,
    wilson_interval,
)


class TestWilsonInterval:
    def test_contains_point_estimate(self):
        low, high = wilson_interval(30, 100)
        assert low < 0.3 < high

    def test_zero_trials_is_vacuous(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_zero_successes(self):
        low, high = wilson_interval(0, 50)
        assert low == 0.0
        assert 0.0 < high < 0.2

    def test_all_successes(self):
        low, high = wilson_interval(50, 50)
        assert high == 1.0
        assert 0.8 < low < 1.0

    def test_narrows_with_more_trials(self):
        narrow = wilson_interval(500, 1000)
        wide = wilson_interval(5, 10)
        assert narrow[1] - narrow[0] < wide[1] - wide[0]

    def test_higher_confidence_is_wider(self):
        mid = wilson_interval(30, 100, confidence=0.95)
        wide = wilson_interval(30, 100, confidence=0.99)
        assert wide[0] < mid[0] and wide[1] > mid[1]

    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 3)
        with pytest.raises(ValueError):
            wilson_interval(-1, 3)

    @given(st.integers(0, 200), st.integers(0, 200))
    def test_bounds_always_ordered(self, successes, trials):
        if successes > trials:
            successes, trials = trials, successes
        low, high = wilson_interval(successes, trials)
        assert 0.0 <= low <= high <= 1.0


class TestProportionInterval:
    def test_normal_method(self):
        low, high = proportion_interval(30, 100, method="normal")
        assert low < 0.3 < high

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            proportion_interval(1, 2, method="bayes")

    def test_normal_zero_trials(self):
        assert proportion_interval(0, 0, method="normal") == (0.0, 1.0)


class TestLiftLowerBound:
    def test_strong_association_stays_above_one(self):
        # 50 of the 100 "New York" calls book an SUV, SUVs are 10% of all
        # calls: lift point estimate is 5.0; lower bound stays > 1.
        assert lift_lower_bound(50, 100, 100, 1000) > 1.0

    def test_lower_bound_below_point_estimate(self):
        point = lift_point_estimate(50, 100, 100, 1000)
        assert lift_lower_bound(50, 100, 100, 1000) < point

    def test_sparse_cell_is_shrunk_hard(self):
        # A single co-occurrence of two singleton concepts has a huge
        # point estimate but carries almost no evidence.
        point = lift_point_estimate(1, 2, 2, 1000)
        bound = lift_lower_bound(1, 2, 2, 1000)
        assert point > 100
        assert bound < point / 4

    def test_empty_marginal_yields_zero(self):
        assert lift_lower_bound(0, 0, 10, 100) == 0.0

    def test_cell_larger_than_marginal_rejected(self):
        with pytest.raises(ValueError):
            lift_lower_bound(11, 10, 20, 100)

    def test_zero_total_rejected(self):
        with pytest.raises(ValueError):
            lift_lower_bound(0, 0, 0, 0)

    @given(
        st.integers(1, 50),
        st.integers(1, 100),
        st.integers(1, 100),
        st.integers(200, 2000),
    )
    def test_never_negative_and_below_point(self, n_cell, n_ver, n_hor, n):
        n_cell = min(n_cell, n_ver, n_hor)
        bound = lift_lower_bound(n_cell, n_ver, n_hor, n)
        point = lift_point_estimate(n_cell, n_ver, n_hor, n)
        assert 0.0 <= bound <= point


class TestLiftPointEstimate:
    def test_independent_concepts_near_one(self):
        assert lift_point_estimate(10, 100, 100, 1000) == pytest.approx(1.0)

    def test_empty_marginal(self):
        assert lift_point_estimate(0, 0, 10, 100) == 0.0
