"""Tests for the forgiving VoC tokenizer."""

from repro.util.tokenize import is_number_token, sentences, tokenize, words


class TestTokenize:
    def test_basic_words(self):
        assert tokenize("book a car") == ["book", "a", "car"]

    def test_contractions_kept_whole(self):
        assert "I'd" in tokenize("I'd pay")

    def test_numbers_with_separators(self):
        assert tokenize("Rs 2,013 paid") == ["Rs", "2,013", "paid"]

    def test_punctuation_isolated(self):
        assert tokenize("hello, world!") == ["hello", ",", "world", "!"]

    def test_lowercasing(self):
        assert tokenize("PLEASE TELL ME", lower=True) == [
            "please",
            "tell",
            "me",
        ]

    def test_empty_text(self):
        assert tokenize("") == []

    def test_noisy_sms_text(self):
        tokens = tokenize("pl confrm rcpt of Rs. 500 @ Karanagar")
        assert "500" in tokens
        assert "@" in tokens

    def test_words_drops_punctuation(self):
        assert words("hello, world!") == ["hello", "world"]

    def test_words_keeps_numbers(self):
        assert words("pay 275 fees") == ["pay", "275", "fees"]


class TestSentences:
    def test_split_on_terminals(self):
        parts = sentences("I want a car. Can you help? Yes!")
        assert parts == ["I want a car.", "Can you help?", "Yes!"]

    def test_no_punctuation_single_sentence(self):
        assert sentences("no punctuation at all") == ["no punctuation at all"]

    def test_empty(self):
        assert sentences("") == []


class TestIsNumberToken:
    def test_plain_integer(self):
        assert is_number_token("2013")

    def test_thousands(self):
        assert is_number_token("2,013")

    def test_decimal(self):
        assert is_number_token("42.50")

    def test_ordinal_rejected(self):
        assert not is_number_token("2nd")

    def test_word_rejected(self):
        assert not is_number_token("two")
