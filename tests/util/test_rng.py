"""Tests for deterministic seed derivation."""

import numpy as np

from repro.util.rng import derive_rng, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "asr") == derive_seed(42, "asr")

    def test_label_separates_streams(self):
        assert derive_seed(42, "asr") != derive_seed(42, "synth")

    def test_seed_separates_streams(self):
        assert derive_seed(1, "asr") != derive_seed(2, "asr")

    def test_non_negative_63_bit(self):
        seed = derive_seed(123456789, "anything")
        assert 0 <= seed < 2**63


class TestDeriveRng:
    def test_same_inputs_same_stream(self):
        a = derive_rng(42, "channel").random(5)
        b = derive_rng(42, "channel").random(5)
        assert np.allclose(a, b)

    def test_different_labels_different_stream(self):
        a = derive_rng(42, "a").random(5)
        b = derive_rng(42, "b").random(5)
        assert not np.allclose(a, b)

    def test_accepts_generator_parent(self):
        parent = np.random.default_rng(0)
        child = derive_rng(parent, "x")
        assert isinstance(child, np.random.Generator)
