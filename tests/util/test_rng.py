"""Tests for deterministic seed derivation."""

import numpy as np

from repro.util.rng import derive_rng, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "asr") == derive_seed(42, "asr")

    def test_label_separates_streams(self):
        assert derive_seed(42, "asr") != derive_seed(42, "synth")

    def test_seed_separates_streams(self):
        assert derive_seed(1, "asr") != derive_seed(2, "asr")

    def test_non_negative_63_bit(self):
        seed = derive_seed(123456789, "anything")
        assert 0 <= seed < 2**63


class TestDeriveRng:
    def test_same_inputs_same_stream(self):
        a = derive_rng(42, "channel").random(5)
        b = derive_rng(42, "channel").random(5)
        assert np.allclose(a, b)

    def test_different_labels_different_stream(self):
        a = derive_rng(42, "a").random(5)
        b = derive_rng(42, "b").random(5)
        assert not np.allclose(a, b)

    def test_accepts_generator_parent(self):
        parent = np.random.default_rng(0)
        child = derive_rng(parent, "x")
        assert isinstance(child, np.random.Generator)


class TestDeriveRngChildSpawn:
    """The Generator-parent path: children spawned from a live stream."""

    def test_deterministic_for_deterministic_parent(self):
        a = derive_rng(np.random.default_rng(7), "child").random(8)
        b = derive_rng(np.random.default_rng(7), "child").random(8)
        assert np.array_equal(a, b)

    def test_spawn_advances_parent_state(self):
        parent = np.random.default_rng(7)
        before = parent.bit_generator.state["state"]["state"]
        derive_rng(parent, "child")
        after = parent.bit_generator.state["state"]["state"]
        assert before != after

    def test_successive_spawns_same_label_differ(self):
        parent = np.random.default_rng(7)
        first = derive_rng(parent, "child").random(8)
        second = derive_rng(parent, "child").random(8)
        assert not np.array_equal(first, second)

    def test_labels_separate_sibling_streams(self):
        a = derive_rng(np.random.default_rng(7), "left").random(8)
        b = derive_rng(np.random.default_rng(7), "right").random(8)
        assert not np.array_equal(a, b)

    def test_child_stream_differs_from_parent_stream(self):
        parent = np.random.default_rng(7)
        child = derive_rng(parent, "child")
        assert not np.array_equal(child.random(8), parent.random(8))

    def test_child_spawn_matches_seed_path_derivation(self):
        # The generator path draws a 63-bit child seed from the parent
        # and then follows the ordinary (seed, label) derivation, so a
        # child must be reproducible from that drawn seed alone.
        drawn = int(np.random.default_rng(7).integers(0, 2**63 - 1))
        via_parent = derive_rng(np.random.default_rng(7), "child")
        via_seed = derive_rng(drawn, "child")
        assert np.array_equal(via_parent.random(8), via_seed.random(8))
