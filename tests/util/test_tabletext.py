"""Tests for ASCII table rendering."""

import pytest

from repro.util.tabletext import format_table


class TestFormatTable:
    def test_simple_table(self):
        text = format_table(["a", "b"], [["x", 1]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "+" in lines[1]
        assert "x" in lines[2]

    def test_title_prepended(self):
        text = format_table(["a"], [["x"]], title="Table I")
        assert text.splitlines()[0] == "Table I"

    def test_numeric_right_aligned_by_default(self):
        text = format_table(["name", "wer"], [["names", 65], ["numbers", 5]])
        rows = text.splitlines()[2:]
        assert rows[0].endswith("65")
        assert rows[1].endswith(" 5")

    def test_float_formatting(self):
        text = format_table(["v"], [[0.123456]], align=["r"])
        assert "0.1235" in text

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_rows_ok(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text
