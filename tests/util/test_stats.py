"""Tests for the t-test and proportion-test helpers."""

import numpy as np
import pytest

from repro.util.stats import proportion_ztest, ttest_independent, welch_ttest


class TestTTest:
    def test_identical_samples_not_significant(self):
        result = ttest_independent([1.0, 2.0, 3.0], [1.0, 2.0, 3.0])
        assert result.p_value == pytest.approx(1.0)
        assert not result.significant()

    def test_clearly_different_samples(self):
        rng = np.random.default_rng(7)
        a = rng.normal(0.60, 0.02, size=30)
        b = rng.normal(0.50, 0.02, size=30)
        result = ttest_independent(a, b)
        assert result.significant(alpha=0.01)
        assert result.mean_difference > 0.05

    def test_df_pooled(self):
        result = ttest_independent([1, 2, 3, 4], [5, 6, 7])
        assert result.df == 5

    def test_welch_handles_unequal_variance(self):
        rng = np.random.default_rng(11)
        a = rng.normal(0, 1, 50)
        b = rng.normal(0, 10, 50)
        result = welch_ttest(a, b)
        assert result.df < 98  # Welch df shrinks below pooled df

    def test_requires_two_observations(self):
        with pytest.raises(ValueError):
            ttest_independent([1.0], [1.0, 2.0])

    def test_means_reported(self):
        result = ttest_independent([2.0, 4.0], [1.0, 3.0])
        assert result.mean_a == pytest.approx(3.0)
        assert result.mean_b == pytest.approx(2.0)


class TestProportionZTest:
    def test_equal_proportions(self):
        z, p = proportion_ztest(50, 100, 50, 100)
        assert z == pytest.approx(0.0)
        assert p == pytest.approx(1.0)

    def test_clear_difference(self):
        z, p = proportion_ztest(700, 1000, 500, 1000)
        assert z > 5
        assert p < 1e-6

    def test_direction(self):
        z, _ = proportion_ztest(30, 100, 60, 100)
        assert z < 0

    def test_invalid_trials(self):
        with pytest.raises(ValueError):
            proportion_ztest(1, 0, 1, 10)

    def test_degenerate_all_success(self):
        z, p = proportion_ztest(10, 10, 10, 10)
        assert z == 0.0
        assert p == 1.0
