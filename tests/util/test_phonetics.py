"""Tests for the grapheme-to-phoneme model and phonetic similarity."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.phonetics import (
    CONFUSABLE_DIGITS,
    PHONES,
    phone_substitution_cost,
    phonetic_similarity,
    soundex,
    to_phones,
)

word_strategy = st.text(
    alphabet=st.characters(min_codepoint=97, max_codepoint=122),
    min_size=1,
    max_size=10,
)


class TestToPhones:
    def test_all_outputs_in_inventory(self):
        for word in ["reservation", "discount", "chicago", "smith", "quote"]:
            for phone in to_phones(word):
                assert phone in PHONES

    def test_digraphs(self):
        assert to_phones("cash") == ("K", "AE", "SH")

    def test_soft_c(self):
        assert to_phones("city")[0] == "S"

    def test_hard_c(self):
        assert to_phones("car")[0] == "K"

    def test_silent_final_e(self):
        assert to_phones("rate")[-1] != "EH"

    def test_digits_expand_to_spoken_words(self):
        assert to_phones("7") == to_phones("seven")
        assert to_phones("42") == to_phones("four") + to_phones("two")

    def test_case_insensitive(self):
        assert to_phones("SMITH") == to_phones("smith")

    @given(word_strategy)
    def test_never_raises_and_valid(self, word):
        for phone in to_phones(word):
            assert phone in PHONES


class TestPhoneSubstitutionCost:
    def test_identity_free(self):
        assert phone_substitution_cost("S", "S") == 0.0

    def test_voicing_pair_cheap(self):
        assert phone_substitution_cost("P", "B") == 0.25

    def test_same_class(self):
        assert phone_substitution_cost("P", "K") == 0.5

    def test_cross_class_full_cost(self):
        assert phone_substitution_cost("S", "AA") == 1.0

    def test_symmetric(self):
        for a, b in [("P", "B"), ("S", "AA"), ("IY", "IH")]:
            assert phone_substitution_cost(a, b) == phone_substitution_cost(
                b, a
            )


class TestPhoneticSimilarity:
    def test_identical(self):
        assert phonetic_similarity("smith", "smith") == 1.0

    def test_homophone_like_pairs_are_close(self):
        assert phonetic_similarity("smith", "smyth") > 0.8

    def test_unrelated_words_are_far(self):
        assert phonetic_similarity("smith", "rental") < 0.5

    def test_similar_sounding_names(self):
        # Similar-sounding names get substituted by ASR (paper IV-A).
        assert phonetic_similarity("jon", "john") > phonetic_similarity(
            "jon", "patricia"
        )

    @given(word_strategy, word_strategy)
    def test_bounds(self, a, b):
        assert 0.0 <= phonetic_similarity(a, b) <= 1.0

    @given(word_strategy, word_strategy)
    def test_symmetry(self, a, b):
        assert phonetic_similarity(a, b) == pytest.approx(
            phonetic_similarity(b, a)
        )


class TestSoundex:
    def test_known_equivalence(self):
        assert soundex("Robert") == soundex("Rupert") == "R163"

    def test_different_names_differ(self):
        assert soundex("Smith") != soundex("Walker")

    def test_smith_smyth_collide(self):
        assert soundex("Smith") == soundex("Smyth")

    def test_empty(self):
        assert soundex("") == "0000"

    def test_length_always_four(self):
        for word in ["a", "ab", "tymczak", "pfister"]:
            assert len(soundex(word)) == 4


class TestConfusableDigits:
    def test_all_digits_covered(self):
        assert set(CONFUSABLE_DIGITS) == set("0123456789")

    def test_confusions_are_digits(self):
        for alternatives in CONFUSABLE_DIGITS.values():
            assert alternatives
            for alt in alternatives:
                assert alt in "0123456789"
