"""Unit and property tests for string distances."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.textdist import (
    damerau_levenshtein,
    jaccard_qgrams,
    jaro,
    jaro_winkler,
    levenshtein,
    levenshtein_alignment,
    levenshtein_similarity,
    qgrams,
)

short_text = st.text(
    alphabet=st.characters(min_codepoint=97, max_codepoint=122), max_size=12
)


class TestLevenshtein:
    def test_identical(self):
        assert levenshtein("smith", "smith") == 0

    def test_classic_example(self):
        assert levenshtein("kitten", "sitting") == 3

    def test_empty_vs_word(self):
        assert levenshtein("", "abc") == 3
        assert levenshtein("abc", "") == 3

    def test_token_sequences(self):
        assert levenshtein(["book", "a", "car"], ["book", "car"]) == 1

    def test_single_substitution(self):
        assert levenshtein("cat", "cut") == 1

    @given(short_text, short_text)
    def test_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(short_text, short_text)
    def test_bounds(self, a, b):
        dist = levenshtein(a, b)
        assert abs(len(a) - len(b)) <= dist <= max(len(a), len(b))

    @given(short_text, short_text, short_text)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)


class TestLevenshteinAlignment:
    def test_all_match(self):
        ops = levenshtein_alignment(["a", "b"], ["a", "b"])
        assert [op for op, _, _ in ops] == ["match", "match"]

    def test_counts_match_distance(self):
        ref = "the quick brown fox".split()
        hyp = "the quack brown cat fox".split()
        ops = levenshtein_alignment(ref, hyp)
        errors = sum(1 for op, _, _ in ops if op != "match")
        assert errors == levenshtein(ref, hyp)

    def test_deletion_reported(self):
        ops = levenshtein_alignment(["a", "b", "c"], ["a", "c"])
        assert ("del", "b", None) in ops

    def test_insertion_reported(self):
        ops = levenshtein_alignment(["a", "c"], ["a", "b", "c"])
        assert ("ins", None, "b") in ops

    def test_substitution_reported(self):
        ops = levenshtein_alignment(["a", "b"], ["a", "x"])
        assert ("sub", "b", "x") in ops

    @given(
        st.lists(st.sampled_from("abcd"), max_size=8),
        st.lists(st.sampled_from("abcd"), max_size=8),
    )
    def test_alignment_reconstructs_both_sides(self, ref, hyp):
        ops = levenshtein_alignment(ref, hyp)
        ref_side = [r for op, r, _ in ops if op in ("match", "sub", "del")]
        hyp_side = [h for op, _, h in ops if op in ("match", "sub", "ins")]
        assert ref_side == ref
        assert hyp_side == hyp


class TestSimilarityMeasures:
    def test_levenshtein_similarity_range(self):
        assert levenshtein_similarity("abc", "abd") == pytest.approx(2 / 3)

    def test_levenshtein_similarity_empty(self):
        assert levenshtein_similarity("", "") == 1.0

    def test_damerau_transposition(self):
        assert damerau_levenshtein("teh", "the") == 1
        assert levenshtein("teh", "the") == 2

    def test_jaro_identical(self):
        assert jaro("martha", "martha") == 1.0

    def test_jaro_disjoint(self):
        assert jaro("abc", "xyz") == 0.0

    def test_jaro_known_value(self):
        assert jaro("martha", "marhta") == pytest.approx(0.9444, abs=1e-3)

    def test_jaro_winkler_prefix_boost(self):
        assert jaro_winkler("dixon", "dickson") > jaro("dixon", "dickson")

    def test_jaro_winkler_identical(self):
        assert jaro_winkler("smith", "smith") == 1.0

    @given(short_text, short_text)
    def test_jaro_winkler_bounds(self, a, b):
        assert 0.0 <= jaro_winkler(a, b) <= 1.0

    @given(short_text, short_text)
    def test_jaro_symmetry(self, a, b):
        assert jaro(a, b) == pytest.approx(jaro(b, a))


class TestQGrams:
    def test_padded_bigrams(self):
        assert qgrams("ab", q=2) == ["#a", "ab", "b#"]

    def test_unpadded(self):
        assert qgrams("abc", q=2, pad=False) == ["ab", "bc"]

    def test_empty_string(self):
        assert qgrams("", q=2, pad=False) == []

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            qgrams("abc", q=0)

    def test_jaccard_identical(self):
        assert jaccard_qgrams("smith", "smith") == 1.0

    def test_jaccard_both_empty(self):
        assert jaccard_qgrams("", "", q=2) == 1.0

    @given(short_text, short_text)
    def test_jaccard_bounds(self, a, b):
        assert 0.0 <= jaccard_qgrams(a, b) <= 1.0
