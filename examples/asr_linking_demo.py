"""Paper Section IV-A: the ASR engine and two-pass entity-constrained
recognition.

Transcribes synthetic calls through the calibrated acoustic channel
(Table I operating point: WER ~45% overall, ~65% on names), retrieves
top-N candidate identities from the reservation warehouse using the
partially recognised entities, and re-decodes name slots constrained to
those identities — the paper gained ~10% absolute on names.

Run:  python examples/asr_linking_demo.py
"""

from repro.asr.system import ASRSystem
from repro.asr.twopass import two_pass_transcribe
from repro.asr.vocabulary import NAME_CLASS, NUMBER_CLASS
from repro.asr.wer import WERBreakdown
from repro.linking.single import EntityLinker
from repro.synth.carrental import CarRentalConfig, generate_car_rental
from repro.util.tabletext import format_table


def main():
    corpus = generate_car_rental(
        CarRentalConfig(
            n_agents=12,
            n_days=3,
            calls_per_agent_per_day=5,
            n_customers=150,
            seed=3,
        )
    )
    system = ASRSystem.build_default(
        extra_sentences=[t.text for t in corpus.transcripts[:25]]
    )
    system.channel.reset(777)

    print("One utterance through the channel:")
    reference = corpus.transcripts[30].turns[1][1]
    transcription = system.transcribe(reference)
    print(f"  REF: {reference}")
    print(f"  HYP: {transcription.text}\n")

    linker = EntityLinker(corpus.database, "customers")
    agent_words = set()
    for agent in corpus.agents:
        agent_words.update(agent.name.split())

    first = WERBreakdown()
    second = WERBreakdown()
    system.channel.reset(555)
    for transcript in corpus.transcripts[25:105]:
        transcription = system.transcribe(transcript.text)
        top5 = linker.top_identities(transcription.lower_text, n=5)
        result = two_pass_transcribe(
            system.decoder, transcription, top5, extra_allowed=agent_words
        )
        first.add(
            transcription.reference_tokens,
            result.first_pass,
            transcription.reference_classes,
        )
        second.add(
            transcription.reference_tokens,
            result.second_pass,
            transcription.reference_classes,
        )

    rows = [
        ["Entire Speech", f"{first.wer():.0%}", f"{second.wer():.0%}"],
        [
            "Names",
            f"{first.wer(NAME_CLASS):.0%}",
            f"{second.wer(NAME_CLASS):.0%}",
        ],
        [
            "Numbers",
            f"{first.wer(NUMBER_CLASS):.0%}",
            f"{second.wer(NUMBER_CLASS):.0%}",
        ],
    ]
    print(
        format_table(
            ["Entity", "WER (1st pass)", "WER (2-pass)"],
            rows,
            title="ASR performance (paper Table I: 45% / 65% / 45%; "
            "two-pass names ~10 points better)",
        )
    )
    improvement = first.wer(NAME_CLASS) - second.wer(NAME_CLASS)
    print(f"\nName WER improvement: {improvement:+.1%} absolute")


if __name__ == "__main__":
    main()
