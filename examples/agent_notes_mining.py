"""Mining agent after-call notes — the fourth VoC channel.

Paper §III lists agent notes among the VoC channels and Fig 1 opens
with two of them ("the cust secratory called up and he inf tht ...").
This example generates shorthand-ridden notes from a call corpus,
cleans them through the notes channel (shorthand expansion + spell
correction), annotates vehicle/place concepts, and shows that the
*notes alone* reproduce the location x vehicle association structure of
Table II — without touching the audio.

Run:  python examples/agent_notes_mining.py
"""

from repro.annotation.domains import build_car_rental_engine
from repro.cleaning.pipeline import CleaningPipeline
from repro.mining.assoc2d import associate
from repro.mining.index import ConceptIndex
from repro.mining.reports import render_association
from repro.synth.carrental import CarRentalConfig, generate_car_rental
from repro.synth.notes import AgentNoteGenerator


def main():
    corpus = generate_car_rental(
        CarRentalConfig(
            n_agents=30,
            n_days=5,
            calls_per_agent_per_day=8,
            n_customers=400,
            seed=33,
        )
    )
    notes = AgentNoteGenerator(seed=33).notes_for_corpus(corpus)
    print(f"Generated {len(notes)} after-call notes; two samples:\n")
    for note in notes[:2]:
        print(f"  raw:   {note.text}")
        print(f"  clean: {note.clean_text}\n")

    pipeline = CleaningPipeline()
    engine = build_car_rental_engine()
    calls = corpus.database.table("calls")
    index = ConceptIndex()
    kept = 0
    for note in notes:
        cleaned = pipeline.clean(note.text, channel="notes")
        if cleaned.discarded:
            continue
        record = calls.get(note.call_id)
        index.add(
            note.call_id,
            annotated=engine.annotate(cleaned.text),
            fields={"call_type": record["call_type"]},
        )
        kept += 1
    print(f"Cleaned and indexed {kept} notes.\n")

    table = associate(index, ("concept", "place"), ("concept",
                                                    "vehicle type"))
    print(
        render_association(
            table,
            value="strength",
            title="Location x vehicle association mined from NOTES "
            "(cf. Table II from transcripts)",
        )
    )
    strongest = table.strongest(4, min_count=5)
    print("\nStrongest cells:")
    for cell in strongest:
        print(
            f"  {cell.row_value:14s} x {cell.col_value:12s} "
            f"count={cell.count:3d} strength={cell.strength:.2f}"
        )


if __name__ == "__main__":
    main()
