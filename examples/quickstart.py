"""BIVoC quickstart: from raw VoC to a business-insight table.

Generates a small synthetic car-rental corpus (structured reservation
warehouse + call transcripts), runs the full BIVoC pipeline — link each
transcript to its warehouse record, annotate concepts, index — and
prints the customer-intention association table the paper's Section V
derives (Table III), plus a drill-down into one cell.

Run:  python examples/quickstart.py
"""

from repro.core import BIVoCConfig, run_insight_analysis
from repro.mining.reports import outcome_percentage_table
from repro.synth.carrental import CarRentalConfig, generate_car_rental


def main():
    print("Generating synthetic car-rental corpus ...")
    corpus = generate_car_rental(
        CarRentalConfig(
            n_agents=20,
            n_days=4,
            calls_per_agent_per_day=6,
            n_customers=250,
            seed=7,
        )
    )
    print(
        f"  {len(corpus.transcripts)} calls, "
        f"{len(corpus.database.table('customers'))} customers\n"
    )

    print("A sample conversation:")
    for speaker, text in corpus.transcripts[0].turns[:5]:
        print(f"  [{speaker:8s}] {text}")
    print()

    print("Running the BIVoC pipeline (link -> annotate -> index) ...")
    study = run_insight_analysis(
        corpus, BIVoCConfig(use_asr=False, link_mode="content")
    )
    analysis = study.analysis
    print(
        f"  linked {analysis.link_successes}/{analysis.link_attempts} "
        f"transcripts to warehouse records\n"
    )

    print(
        outcome_percentage_table(
            study.intent_table,
            title="Customer intention vs call outcome (paper Table III)",
            col_order=["reservation", "unbooked"],
        )
    )
    print("\nPaper reports: strong start 63%/37%, weak start 32%/68%.\n")

    strongest = study.location_vehicle_table.strongest(3, min_count=3)
    print("Strongest location<->vehicle associations (paper Table II):")
    for cell in strongest:
        print(
            f"  {cell.row_value:14s} x {cell.col_value:12s} "
            f"count={cell.count:3d} strength={cell.strength:.2f}"
        )
    top = strongest[0]
    docs = study.location_vehicle_table.documents(
        top.row_value, top.col_value
    )
    print(
        f"\nDrill-down (Fig 4): cell ({top.row_value}, {top.col_value}) "
        f"is backed by calls {docs[:8]} ..."
    )


if __name__ == "__main__":
    main()
