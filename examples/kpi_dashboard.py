"""The traditional-BI side of BIVoC: KPI reporting plus topic trends.

Paper §II frames BIVoC against classic BI ("monitor business
conditions, track Key Performance Indicators ... real time dashboards
... static reports").  This example renders the structured-side KPI
report and then shows what only the VoC side can add: the emerging
topics in what customers *say*.

Run:  python examples/kpi_dashboard.py
"""

from repro.annotation.domains import build_car_rental_engine
from repro.mining.index import ConceptIndex
from repro.mining.kpi import render_kpi_report
from repro.mining.trends import emerging_concepts
from repro.synth.carrental import CarRentalConfig, generate_car_rental


def main():
    corpus = generate_car_rental(
        CarRentalConfig(
            n_agents=12,
            n_days=6,
            calls_per_agent_per_day=6,
            n_customers=200,
            seed=21,
        )
    )

    print("=== Structured-side KPIs (what SAS/Cognos could already do) ===\n")
    print(render_kpi_report(corpus.database, top=5))

    print("\n=== VoC side: what customers are talking about ===\n")
    engine = build_car_rental_engine()
    index = ConceptIndex()
    for transcript in corpus.transcripts:
        index.add(
            transcript.call_id,
            annotated=engine.annotate(transcript.text),
            timestamp=transcript.day,
        )
    for dimension, label in [
        (("concept", "vehicle type"), "vehicle-type mentions"),
        (("concept", "place"), "location mentions"),
    ]:
        print(f"Trending {label} (per-day slope):")
        ranked = emerging_concepts(
            index, dimension, buckets=list(range(corpus.config.n_days))
        )
        for key, slope, total in ranked[:4]:
            print(f"  {key[2]:14s} slope {slope:+.2f}  total {total}")
        print()


if __name__ == "__main__":
    main()
