"""Paper Section VI: churn prediction from emails and SMS.

Cleans a noisy telecom VoC corpus (spam, SMS lingo, multilingual
fragments), links messages to customer records with the data-linking
engine, trains a naive-Bayes churn classifier on imbalanced history,
and measures the churner detection rate on a held-out month — the
paper detected 53.6% of churners from emails.

Run:  python examples/churn_prediction.py
"""

from repro.core.usecases.churn import run_churn_study
from repro.synth.telecom import TelecomConfig, generate_telecom


def main():
    print("Generating telecom VoC corpus ...")
    corpus = generate_telecom(TelecomConfig(scale=0.05, n_customers=2500))
    print(
        f"  {len(corpus.emails)} emails, {len(corpus.sms)} sms, "
        f"{len(corpus.customers)} customers\n"
    )

    print("A raw SMS and a raw email snippet:")
    sms = next(m for m in corpus.sms if m.sender_entity_id is not None)
    print(f"  SMS:   {sms.raw_text[:90]}")
    email = next(
        m for m in corpus.emails if m.sender_entity_id is not None
    )
    print(f"  Email: {email.raw_text.splitlines()[0][:90]}\n")

    for channel in ("email", "sms"):
        print(f"=== Churn study over {channel} ===")
        result = run_churn_study(corpus, channel=channel)
        stats = result.cleaning_stats
        print(
            f"  cleaning: kept {stats.kept}/{stats.total} "
            f"(spam {stats.spam}, non-english {stats.non_english})"
        )
        print(
            f"  linking: {result.unlinked_fraction:.1%} unlinkable "
            f"(paper: ~18% for emails)"
        )
        print(
            f"  training: {result.train_messages} messages, "
            f"{result.train_churner_fraction:.1%} from churners"
        )
        print(
            f"  churner detection rate: {result.detection_rate:.1%} "
            f"(paper, email: 53.6%)"
        )
        print(
            f"  message-level precision {result.message_report.precision:.2f}"
            f", false-positive rate "
            f"{result.message_report.false_positive_rate:.2f}\n"
        )


if __name__ == "__main__":
    main()
