"""Explore a VoC corpus with the mining toolkit.

Shows the analysis functions of paper Section IV-D on the telecom
corpus: relative-frequency relevancy analysis ("what do churn-intent
customers talk about?"), topic trends over months, and a two-dimensional
association between churn drivers and customer region.

Run:  python examples/voc_explorer.py
"""

from repro.annotation.domains import build_telecom_engine
from repro.cleaning.pipeline import CleaningPipeline
from repro.mining.assoc2d import associate
from repro.mining.index import ConceptIndex, concept_key
from repro.mining.relfreq import relative_frequency
from repro.mining.reports import render_association, render_relevancy
from repro.mining.trends import trend_series, trend_slope
from repro.synth.telecom import TelecomConfig, generate_telecom


def main():
    corpus = generate_telecom(TelecomConfig(scale=0.02, n_customers=1200))
    engine = build_telecom_engine()
    pipeline = CleaningPipeline(spell_correct=False)
    customers = corpus.database.table("customers")

    print("Cleaning, annotating and indexing messages ...")
    index = ConceptIndex()
    for message in corpus.messages:
        cleaned = pipeline.clean(message.raw_text, channel=message.channel)
        if cleaned.discarded:
            continue
        annotated = engine.annotate(cleaned.text)
        fields = {"channel": message.channel}
        if message.sender_entity_id is not None:
            customer = customers.get(message.sender_entity_id)
            fields["region"] = customer["region"]
            fields["plan_type"] = customer["plan_type"]
        index.add(
            message.message_id,
            annotated=annotated,
            fields=fields,
            timestamp=message.month,
        )
    print(f"  indexed {len(index)} messages\n")

    print("Relevancy analysis: concepts over-represented in messages")
    print("that express churn intent:\n")
    results = relative_frequency(
        index,
        [concept_key("churn intent", "churn intent")],
        ("concept", "billing_issue"),
    )
    results += relative_frequency(
        index,
        [concept_key("churn intent", "churn intent")],
        ("concept", "competitor_tariff"),
    )
    print(render_relevancy(results, title="vs churn intent"))
    print()

    print("Trend of billing complaints by month:")
    series = trend_series(
        index,
        concept_key("billing_issue", "billing_issue"),
        buckets=list(range(corpus.config.n_months)),
    )
    for month, count in series:
        print(f"  month {month}: {'#' * (count // 5)} {count}")
    print(f"  slope: {trend_slope(series):+.2f} per month\n")

    print("Churn-driver mentions by region (2-D association):")
    table = associate(index, ("field", "region"), ("concept", "churn intent"))
    print(render_association(table, value="count"))


if __name__ == "__main__":
    main()
