"""Paper Section V: the agent-productivity engagement, end to end.

1. Analyse two weeks of calls: which customer openings and which agent
   utterances drive bookings (Tables III and IV)?
2. Turn the insights into a training programme for 20 of 90 agents
   (offer discounts to weak starts, use value-selling phrases), run a
   two-month A/B period, and t-test the booking ratios — the paper saw
   a 3% lift at p = 0.0675.

Run:  python examples/agent_productivity.py
"""

from repro.core import BIVoCConfig, run_insight_analysis
from repro.core.usecases.agent_productivity import run_training_experiment
from repro.mining.reports import outcome_percentage_table
from repro.synth.carrental import CarRentalConfig, generate_car_rental


def main():
    print("=== Phase 1: mine insights from recorded calls ===\n")
    corpus = generate_car_rental(
        CarRentalConfig(
            n_agents=30,
            n_days=5,
            calls_per_agent_per_day=8,
            n_customers=400,
            seed=11,
        )
    )
    study = run_insight_analysis(
        corpus, BIVoCConfig(use_asr=False, link_mode="content")
    )
    print(
        outcome_percentage_table(
            study.intent_table,
            title="Table III: customer intention vs outcome",
            col_order=["reservation", "unbooked"],
        )
    )
    print()
    for name, table in study.utterance_tables.items():
        print(
            outcome_percentage_table(
                table,
                title=f"Table IV ({name}) vs outcome",
                col_order=["reservation", "unbooked"],
            )
        )
        print()

    print("Actionable insights (as in the paper):")
    print("  * weak-start customers rarely book unless offered discounts")
    print("  * value-selling phrases lift booking odds\n")

    print("=== Phase 2: train 20 of 90 agents, A/B over two months ===\n")
    outcome, _ = run_training_experiment(
        CarRentalConfig(
            n_agents=90,
            n_days=44,
            calls_per_agent_per_day=20,
            n_customers=3000,
            seed=23,
            agent_logit_sigma=0.26,
            build_transcripts=False,
        )
    )
    print(
        f"pre-period group gap:     {outcome.pre_gap:+.4f} "
        f"(p = {outcome.pre_ttest.p_value:.3f}; groups comparable)"
    )
    print(
        f"post-period improvement:  {outcome.improvement:+.4f} "
        f"(p = {outcome.ttest.p_value:.4f})"
    )
    print(
        f"trained mean booking ratio {outcome.ttest.mean_a:.3f} vs "
        f"control {outcome.ttest.mean_b:.3f}"
    )
    print("\nPaper reports: +3% booking ratio, t-test p = 0.0675.")


if __name__ == "__main__":
    main()
